#include "dist/agent.hpp"

#include <algorithm>

namespace pacds::dist {

void HostAgent::receive(const Message& message) {
  if (message.from == id_) return;  // own broadcast echoes are ignored
  auto& info = knowledge_[message.from];
  switch (message.type) {
    case Message::Type::kHello:
      if (!std::binary_search(neighbors_.begin(), neighbors_.end(),
                              message.from)) {
        neighbors_.insert(std::lower_bound(neighbors_.begin(),
                                           neighbors_.end(), message.from),
                          message.from);
      }
      info.energy = message.energy;
      break;
    case Message::Type::kNeighborList:
      info.open_neighbors = message.neighbor_list;
      std::sort(info.open_neighbors.begin(), info.open_neighbors.end());
      info.has_list = true;
      break;
    case Message::Type::kStatus:
      info.is_gateway = message.is_gateway;
      break;
  }
}

Message HostAgent::make_hello() const {
  Message msg;
  msg.type = Message::Type::kHello;
  msg.from = id_;
  msg.energy = energy_;
  return msg;
}

Message HostAgent::make_neighbor_list() const {
  Message msg;
  msg.type = Message::Type::kNeighborList;
  msg.from = id_;
  msg.neighbor_list = neighbors_;
  return msg;
}

Message HostAgent::make_status() const {
  Message msg;
  msg.type = Message::Type::kStatus;
  msg.from = id_;
  msg.is_gateway = marked_;
  return msg;
}

bool HostAgent::knows_edge(NodeId a, NodeId b) const {
  if (a == b) return false;
  const auto in_list = [this](NodeId owner, NodeId member) {
    if (owner == id_) {
      return std::binary_search(neighbors_.begin(), neighbors_.end(), member);
    }
    const auto it = knowledge_.find(owner);
    if (it == knowledge_.end() || !it->second.has_list) return false;
    return std::binary_search(it->second.open_neighbors.begin(),
                              it->second.open_neighbors.end(), member);
  };
  return in_list(a, b) || in_list(b, a);
}

int HostAgent::degree_of(NodeId v) const {
  if (v == id_) return static_cast<int>(neighbors_.size());
  const auto it = knowledge_.find(v);
  return it == knowledge_.end()
             ? 0
             : static_cast<int>(it->second.open_neighbors.size());
}

double HostAgent::energy_of(NodeId v) const {
  if (v == id_) return energy_;
  const auto it = knowledge_.find(v);
  return it == knowledge_.end() ? 0.0 : it->second.energy;
}

bool HostAgent::less(KeyKind kind, NodeId a, NodeId b) const {
  if (a == b) return false;
  switch (kind) {
    case KeyKind::kId:
      return a < b;
    case KeyKind::kDegreeId: {
      const int da = degree_of(a);
      const int db = degree_of(b);
      if (da != db) return da < db;
      return a < b;
    }
    case KeyKind::kEnergyId: {
      const double ea = energy_of(a);
      const double eb = energy_of(b);
      if (ea != eb) return ea < eb;
      return a < b;
    }
    case KeyKind::kEnergyDegreeId: {
      const double ea = energy_of(a);
      const double eb = energy_of(b);
      if (ea != eb) return ea < eb;
      const int da = degree_of(a);
      const int db = degree_of(b);
      if (da != db) return da < db;
      return a < b;
    }
    case KeyKind::kStabilityEnergyId: {
      // One protocol round is a single snapshot: no churn history exists, so
      // every host is equally stable and SEL collapses to (energy, id) —
      // exactly what the centralized comparator does with a null stability
      // vector (the dist-agreement oracle relies on this match).
      const double ea = energy_of(a);
      const double eb = energy_of(b);
      if (ea != eb) return ea < eb;
      return a < b;
    }
  }
  return false;
}

void HostAgent::run_marking() {
  marked_ = false;
  for (std::size_t i = 0; i < neighbors_.size() && !marked_; ++i) {
    for (std::size_t j = i + 1; j < neighbors_.size(); ++j) {
      if (!knows_edge(neighbors_[i], neighbors_[j])) {
        marked_ = true;
        break;
      }
    }
  }
}

bool HostAgent::closed_covered_by(NodeId u) const {
  // N[self] ⊆ N[u]: u must be a neighbor (true by construction of callers)
  // and every other neighbor of self must be adjacent to u.
  for (const NodeId x : neighbors_) {
    if (x == u) continue;
    if (!knows_edge(u, x)) return false;
  }
  return true;
}

bool HostAgent::open_covered_by(NodeId u, NodeId w) const {
  // N(self) ⊆ N(u) ∪ N(w), evaluated edge-by-edge from 2-hop knowledge.
  for (const NodeId x : neighbors_) {
    const bool in_nu = x != u && knows_edge(u, x);
    const bool in_nw = x != w && knows_edge(w, x);
    if (!in_nu && !in_nw) return false;
  }
  return true;
}

bool HostAgent::neighbor_covered_by(NodeId x, NodeId a, NodeId b) const {
  // N(x) ⊆ N(a) ∪ N(b) for a neighbor x whose list we hold.
  const auto it = knowledge_.find(x);
  if (it == knowledge_.end() || !it->second.has_list) return false;
  for (const NodeId y : it->second.open_neighbors) {
    const bool in_na =
        y != a && (a == id_ ? std::binary_search(neighbors_.begin(),
                                                 neighbors_.end(), y)
                            : knows_edge(a, y));
    const bool in_nb =
        y != b && (b == id_ ? std::binary_search(neighbors_.begin(),
                                                 neighbors_.end(), y)
                            : knows_edge(b, y));
    if (!in_na && !in_nb) return false;
  }
  return true;
}

bool HostAgent::run_rule1(KeyKind kind) {
  if (!marked_) return false;
  for (const NodeId u : neighbors_) {
    const auto it = knowledge_.find(u);
    if (it == knowledge_.end() || !it->second.is_gateway) continue;
    if (less(kind, id_, u) && closed_covered_by(u)) {
      marked_ = false;
      return true;
    }
  }
  return false;
}

bool HostAgent::run_rule2(KeyKind kind, Rule2Form form) {
  if (!marked_) return false;
  std::vector<NodeId> marked_neighbors;
  for (const NodeId u : neighbors_) {
    const auto it = knowledge_.find(u);
    if (it != knowledge_.end() && it->second.is_gateway) {
      marked_neighbors.push_back(u);
    }
  }
  for (std::size_t i = 0; i < marked_neighbors.size(); ++i) {
    for (std::size_t j = i + 1; j < marked_neighbors.size(); ++j) {
      const NodeId u = marked_neighbors[i];
      const NodeId w = marked_neighbors[j];
      if (!open_covered_by(u, w)) continue;
      bool fires = false;
      if (form == Rule2Form::kSimple) {
        fires = less(kind, id_, u) && less(kind, id_, w);
      } else {
        const bool cov_u = neighbor_covered_by(u, id_, w);
        const bool cov_w = neighbor_covered_by(w, u, id_);
        if (!cov_u && !cov_w) fires = true;
        else if (cov_u && !cov_w) fires = less(kind, id_, u);
        else if (cov_w && !cov_u) fires = less(kind, id_, w);
        else fires = less(kind, id_, u) && less(kind, id_, w);
      }
      if (fires) {
        marked_ = false;
        return true;
      }
    }
  }
  return false;
}

}  // namespace pacds::dist
