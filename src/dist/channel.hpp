#pragma once
// Channel-level fault knobs for the distributed protocol. Header-only plain
// data on purpose: sim/faults.hpp embeds these in a FaultPlan without
// linking pacds_dist, and dist/protocol.cpp consumes them to perturb frame
// delivery. Semantics are specified in FAULTS.md ("channel" section).

namespace pacds::dist {

/// Per-frame fault probabilities of the shared radio channel. Every
/// (sender, receiver) delivery draws independently, in a deterministic
/// order, from one seeded stream — see run_faulty_protocol.
struct ChannelFaultConfig {
  double drop = 0.0;       ///< frame lost outright (triggers a retransmit)
  double duplicate = 0.0;  ///< frame delivered twice (receivers idempotent)
  double delay = 0.0;      ///< frame deferred to the next attempt boundary

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }
};

/// Bounded retry-with-timeout for one protocol phase: a sender retransmits
/// to the neighbors that have not acknowledged, waiting
/// min(backoff_base * 2^(attempt-1), backoff_cap) synchronous rounds between
/// attempts. After max_attempts the remaining links stay undelivered and
/// the phase proceeds degraded (FaultyProtocolResult::complete = false).
struct RetryPolicy {
  int max_attempts = 12;  ///< total transmissions per (frame, receiver) link
  int backoff_base = 1;   ///< rounds waited after the first failed attempt
  int backoff_cap = 8;    ///< ceiling of the exponential backoff
};

}  // namespace pacds::dist
