#pragma once
// A host agent executing the distributed marking + pruning protocol using
// ONLY what arrives in its inbox — the fidelity check that the library's
// centralized implementation really is a distributed algorithm. An agent
// never touches the global Graph; the ProtocolDriver (protocol.hpp) only
// delivers each broadcast to the sender's radio neighbors.
//
// Protocol rounds (synchronous):
//   1. HELLO          — announce (id, energy); receivers learn N(v) and
//                       neighbor energies.
//   2. NEIGHBOR_LIST  — broadcast N(v); receivers learn their 2-hop
//                       topology and neighbor degrees.
//   3. local marking  — mark iff two neighbors are non-adjacent; broadcast
//                       STATUS.
//   4. Rule 1 pass    — decide against the round-3 statuses; hosts whose
//                       status flipped broadcast STATUS again.
//   5. Rule 2 pass    — decide against the round-4 statuses; flips
//                       broadcast once more.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/rules.hpp"

namespace pacds::dist {

/// Wire format of every protocol broadcast.
struct Message {
  enum class Type : std::uint8_t { kHello, kNeighborList, kStatus };
  Type type = Type::kHello;
  NodeId from = -1;
  double energy = 0.0;                ///< kHello
  std::vector<NodeId> neighbor_list;  ///< kNeighborList
  bool is_gateway = false;            ///< kStatus
};

/// One host's protocol state machine.
class HostAgent {
 public:
  HostAgent(NodeId id, double energy) : id_(id), energy_(energy) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] bool is_gateway() const noexcept { return marked_; }

  /// Feeds one received broadcast into local state.
  void receive(const Message& message);

  // ---- Round outputs (what this host broadcasts) -------------------------
  [[nodiscard]] Message make_hello() const;
  [[nodiscard]] Message make_neighbor_list() const;
  [[nodiscard]] Message make_status() const;

  /// Round 3: the marking decision from 2-hop knowledge.
  void run_marking();

  /// Round 4/5: one pruning decision against the *currently known* neighbor
  /// statuses. Returns true iff the host just unmarked itself (and so must
  /// re-broadcast its status).
  bool run_rule1(KeyKind kind);
  bool run_rule2(KeyKind kind, Rule2Form form);

 private:
  struct NeighborInfo {
    double energy = 0.0;
    std::vector<NodeId> open_neighbors;  ///< sorted
    bool is_gateway = false;
    bool has_list = false;
  };

  [[nodiscard]] bool knows_edge(NodeId a, NodeId b) const;
  [[nodiscard]] int degree_of(NodeId v) const;
  [[nodiscard]] double energy_of(NodeId v) const;
  /// Strict priority comparison from locally known attributes.
  [[nodiscard]] bool less(KeyKind kind, NodeId a, NodeId b) const;
  [[nodiscard]] bool closed_covered_by(NodeId u) const;
  [[nodiscard]] bool open_covered_by(NodeId u, NodeId w) const;
  [[nodiscard]] bool neighbor_covered_by(NodeId x, NodeId a, NodeId b) const;

  NodeId id_;
  double energy_;
  bool marked_ = false;
  std::vector<NodeId> neighbors_;            ///< sorted, from hellos
  std::map<NodeId, NeighborInfo> knowledge_; ///< per-neighbor state
};

}  // namespace pacds::dist
