#pragma once
// The invariant-oracle suite the fuzzer runs against every scenario. Each
// oracle checks one equivalence or conservation law the test suite pins on
// hand-picked topologies, here exercised on random instances:
//
//   cds-validity        — compute_cds internal count consistency, rules ⊆
//                         marking, marking output passes check_cds, and the
//                         final set passes check_cds for the sequential and
//                         verified strategies. The simultaneous strategy is
//                         *documented unsafe* (it violates connectivity on a
//                         sizable fraction of dense random instances — see
//                         tests/cds_property_test SimultaneousSafetyTest),
//                         so its final set is deliberately NOT asserted.
//   engine-identity     — full-rebuild vs incremental trials bit-identical
//                         (modulo wall-clock fields) wherever the
//                         incremental engine is eligible.
//   threads-identity    — serial vs threaded trials bit-identical for the
//                         scenario's thread count.
//   dist-agreement      — distributed protocol == centralized simultaneous
//                         compute_cds; zero-fault ARQ == reliable run; a
//                         complete faulty-channel ARQ run == reliable run.
//   energy-conservation — per-interval battery accounting: energy only
//                         leaves the system, and on intervals without a
//                         death the exact drain/theft ledger balances.
//   fault-stats         — TrialResult::faults tallies agree with the
//                         trace's fault records (incl. the -1
//                         first_death_interval sentinel).
//   jsonl-schema        — the run's metrics stream passes
//                         obs::validate_metrics_stream.
//   empty-plan-identity — a trial with an event-free plan is bit-identical
//                         to the fault-free twin.
//   simd-identity       — the same trial forced through the scalar kernel
//                         table vs the host's best dispatch level
//                         (simd::set_level) is bit-identical; skipped when
//                         the host has no vector path.
//   gap-bound           — the branch-and-bound exact optimum is a true
//                         lower bound: it matches the exhaustive bitmask
//                         optimum where that is computable (n <= 20), every
//                         valid heuristic CDS (greedy/MIS/tree/(2,2)/the
//                         marking process) is at least as large, and the
//                         greedy (2,2) backbone passes its own validity
//                         predicate — including single-member-loss survival
//                         when the full (2,2) property holds.
//   serve-identity      — the `pacds serve` tick path (create + ticks in
//                         the scenario's serve_ticks granularity) emits a
//                         canonically identical metrics stream to a
//                         standalone run_lifetime_trials call: same records
//                         byte for byte once the serve envelope, tenant
//                         tags and wall-clock fields are stripped.
//
// Oracles that need preconditions (a connected snapshot, engine
// eligibility, threads > 1, ...) skip silently when the scenario is outside
// their domain; the generator keeps every domain populated.

#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace pacds::fuzz {

/// One oracle violation. `oracle` is the stable name from the list above
/// (shrinking preserves it); `detail` is a human-readable diagnosis.
struct OracleFailure {
  std::string oracle;
  std::string detail;
};

// Mutation-testing hooks: each constant makes run_oracles deliberately
// perturb the named oracle's observed data, so tests can prove a real
// defect would be caught, shrunk and written as a reproducer. 0 = off.
inline constexpr int kMutateNone = 0;
inline constexpr int kMutateCdsValidity = 1;
inline constexpr int kMutateEngineIdentity = 2;
inline constexpr int kMutateThreadsIdentity = 3;
inline constexpr int kMutateDistAgreement = 4;
inline constexpr int kMutateEnergyAccounting = 5;
inline constexpr int kMutateFaultStats = 6;
inline constexpr int kMutateJsonl = 7;
inline constexpr int kMutateEmptyPlanIdentity = 8;
inline constexpr int kMutateSimdIdentity = 9;
inline constexpr int kMutateServeIdentity = 10;
inline constexpr int kMutateGapBound = 11;

struct OracleOptions {
  int mutation = kMutateNone;
};

/// Runs every applicable oracle against the scenario; returns all
/// violations (empty = clean). Deterministic in (scenario, options).
[[nodiscard]] std::vector<OracleFailure> run_oracles(
    const FuzzScenario& scenario, const OracleOptions& options = {});

}  // namespace pacds::fuzz
