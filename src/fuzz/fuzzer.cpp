#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "fuzz/shrink.hpp"

namespace pacds::fuzz {

namespace {

namespace fs = std::filesystem;

/// The corpus directory's *.json files in lexicographic order, so replay
/// order (and hence the log) is stable across platforms.
std::vector<std::string> corpus_files(const std::string& dir) {
  std::vector<std::string> paths;
  if (dir.empty() || !fs::is_directory(dir)) return paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void replay_corpus(const FuzzOptions& options, FuzzReport& report,
                   std::ostream& log) {
  const std::vector<std::string> paths = corpus_files(options.corpus_dir);
  if (paths.empty()) return;
  log << "replaying " << paths.size() << " corpus reproducer"
      << (paths.size() == 1 ? "" : "s") << " from " << options.corpus_dir
      << "\n";
  const OracleOptions oracle_options{options.mutation};
  for (const std::string& path : paths) {
    FuzzScenario scenario;
    try {
      scenario = load_scenario(path);
    } catch (const std::exception& e) {
      report.corpus_errors.push_back(e.what());
      log << "  CORRUPT " << path << ": " << e.what() << "\n";
      continue;
    }
    ++report.corpus_replayed;
    const std::vector<OracleFailure> failures =
        run_oracles(scenario, oracle_options);
    if (failures.empty()) {
      log << "  ok " << path << "\n";
      continue;
    }
    for (const OracleFailure& failure : failures) {
      log << "  FAIL " << path << " [" << failure.oracle
          << "]: " << failure.detail << "\n";
      report.findings.push_back(
          {failure.oracle, failure.detail, path, path, scenario});
    }
  }
}

/// Writes the minimized reproducer; returns its path ("" without a corpus).
std::string write_reproducer(const FuzzOptions& options,
                             const FuzzScenario& scenario,
                             const std::string& oracle, std::ostream& log) {
  if (options.corpus_dir.empty()) return {};
  fs::create_directories(options.corpus_dir);
  const std::string name = "repro-" + oracle + "-seed" +
                           std::to_string(options.seed) + "-i" +
                           std::to_string(scenario.id) + ".json";
  const std::string path = (fs::path(options.corpus_dir) / name).string();
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("fuzz: cannot write reproducer " + path);
  }
  out << scenario_to_json(scenario);
  log << "  wrote reproducer " << path << "\n";
  return path;
}

void random_campaign(const FuzzOptions& options, FuzzReport& report,
                     std::ostream& log) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto out_of_time = [&] {
    if (options.time_budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    return elapsed.count() >= options.time_budget_seconds;
  };
  const OracleOptions oracle_options{options.mutation};
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    if (out_of_time()) {
      log << "time budget reached after " << report.iterations
          << " iterations\n";
      break;
    }
    const FuzzScenario scenario = random_scenario(options.seed, i);
    ++report.iterations;
    const std::vector<OracleFailure> failures =
        run_oracles(scenario, oracle_options);
    if (failures.empty()) continue;
    // Shrink against the first violated oracle; the others usually collapse
    // to the same root cause and the replayed reproducer re-reports them.
    const OracleFailure& first = failures.front();
    log << "iteration " << i << " FAILED [" << first.oracle
        << "]: " << first.detail << "\n";
    const ShrinkResult shrunk =
        shrink_scenario(scenario, first.oracle, oracle_options);
    log << "  shrunk to n=" << shrunk.scenario.config.n_hosts << " ("
        << shrunk.steps_kept << "/" << shrunk.steps_tried
        << " transforms kept)\n";
    const std::string path =
        write_reproducer(options, shrunk.scenario, first.oracle, log);
    report.findings.push_back({first.oracle, shrunk.detail,
                               "iteration " + std::to_string(i), path,
                               shrunk.scenario});
  }
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream& log) {
  FuzzReport report;
  replay_corpus(options, report, log);
  random_campaign(options, report, log);
  log << "fuzz: " << report.corpus_replayed << " corpus replays, "
      << report.iterations << " random iterations, " << report.findings.size()
      << " finding" << (report.findings.size() == 1 ? "" : "s");
  if (!report.corpus_errors.empty()) {
    log << ", " << report.corpus_errors.size() << " corrupt corpus file"
        << (report.corpus_errors.size() == 1 ? "" : "s");
  }
  log << (report.ok() ? " — clean" : " — FAILURES") << "\n";
  return report;
}

}  // namespace pacds::fuzz
