#include "fuzz/scenario.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "net/rng.hpp"
#include "sim/config_json.hpp"

namespace pacds::fuzz {

namespace {

/// Seeds must survive a JSON double round trip (the corpus number type), so
/// generated ones are masked below 2^48.
constexpr std::uint64_t kSeedMask = (std::uint64_t{1} << 48) - 1;

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("fuzz scenario: " + message);
}

const std::string& string_of(const JsonValue& value, const std::string& what) {
  if (!value.is_string()) fail(what + " must be a string");
  return value.as_string();
}

double number_of(const JsonValue& value, const std::string& what) {
  if (!value.is_number()) fail(what + " must be a number");
  const double raw = value.as_number();
  if (!std::isfinite(raw)) fail(what + " must be finite");
  return raw;
}

long integer_of(const JsonValue& value, const std::string& what, double lo,
                double hi) {
  const double raw = number_of(value, what);
  if (raw != std::floor(raw) || raw < lo || raw > hi) {
    fail(what + " must be an integer in [" + JsonWriter::format_double(lo) +
         ", " + JsonWriter::format_double(hi) + "]");
  }
  return static_cast<long>(raw);
}

}  // namespace

FuzzScenario random_scenario(std::uint64_t base_seed, std::uint64_t index) {
  Xoshiro256 rng(derive_seed(base_seed, index));
  FuzzScenario s;
  s.id = index;
  s.trial_seed = rng.next() & kSeedMask;
  SimConfig& c = s.config;
  c.n_hosts = static_cast<int>(rng.uniform_int(4, 48));
  c.radius = rng.uniform(18.0, 45.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: c.boundary = BoundaryPolicy::kClamp; break;
    case 1: c.boundary = BoundaryPolicy::kReflect; break;
    default: c.boundary = BoundaryPolicy::kWrap; break;
  }
  // Mostly planar, with a 3-D tail so placement, the spatial grid's z cells,
  // lifted mobility and the tile engine's xy-projection contract all get
  // fuzzed.
  c.field_depth = rng.bernoulli(0.3) ? rng.uniform(20.0, 80.0) : 0.0;
  // Mostly unit disk (the only model the incremental engine covers), with a
  // sparser-proximity-graph tail so the full-rebuild path also gets fuzzed.
  if (rng.bernoulli(0.75)) {
    c.link_model = LinkModel::kUnitDisk;
  } else {
    c.link_model = rng.bernoulli(0.5) ? LinkModel::kGabriel : LinkModel::kRng;
  }
  // Radio dimension, gated on the unit-disk link model (the config schema —
  // and every engine — rejects a non-trivial radio stacked on a sparsified
  // proximity graph).
  if (c.link_model == LinkModel::kUnitDisk && rng.bernoulli(0.4)) {
    if (rng.bernoulli(0.5)) {
      c.radio = RadioKind::kShadowing;
      c.radio_params.sigma_db = rng.uniform(1.0, 8.0);
      c.radio_params.path_loss_exp = rng.uniform(2.0, 4.0);
    } else {
      c.radio = RadioKind::kProbabilistic;
      c.radio_params.link_prob = rng.uniform(0.5, 1.0);
    }
    c.radio_params.fading_seed = rng.next() & kSeedMask;
  }
  c.initial_energy = rng.uniform(20.0, 80.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: c.drain_model = DrainModel::kConstantTotal; break;
    case 1: c.drain_model = DrainModel::kLinearTotal; break;
    default: c.drain_model = DrainModel::kQuadraticTotal; break;
  }
  c.stay_probability = rng.uniform(0.3, 0.95);
  // Mobility dimension: weighted toward the paper's jump model, with every
  // alternative in the tail — these are exactly the configurations whose
  // wire keys used to be silently dropped, so the serve-identity oracle's
  // config round trip must see them. Each branch draws only its own model's
  // parameters; per-scenario streams are independent, so the uneven draw
  // counts are harmless.
  switch (rng.uniform_int(0, 7)) {
    case 0:
      c.mobility_kind = MobilityKind::kRandomWalk;
      c.mobility_params.step_min = rng.uniform(0.5, 2.0);
      c.mobility_params.step_max =
          c.mobility_params.step_min + rng.uniform(0.0, 6.0);
      break;
    case 1:
      c.mobility_kind = MobilityKind::kRandomWaypoint;
      c.mobility_params.speed_min = rng.uniform(0.5, 2.0);
      c.mobility_params.speed_max =
          c.mobility_params.speed_min + rng.uniform(0.0, 6.0);
      c.mobility_params.pause_intervals =
          static_cast<int>(rng.uniform_int(0, 3));
      break;
    case 2:
      c.mobility_kind = MobilityKind::kGaussMarkov;
      c.mobility_params.mean_speed = rng.uniform(1.0, 5.0);
      c.mobility_params.alpha = rng.uniform(0.0, 1.0);
      c.mobility_params.speed_stddev = rng.uniform(0.2, 2.0);
      c.mobility_params.heading_stddev = rng.uniform(0.1, 1.0);
      break;
    case 3:
      c.mobility_kind = MobilityKind::kStatic;
      break;
    default:
      c.mobility_kind = MobilityKind::kPaperJump;
      break;
  }
  switch (rng.uniform_int(0, 5)) {
    case 0: c.rule_set = RuleSet::kNR; break;
    case 1: c.rule_set = RuleSet::kID; break;
    case 2: c.rule_set = RuleSet::kND; break;
    case 3: c.rule_set = RuleSet::kEL1; break;
    case 4: c.rule_set = RuleSet::kEL2; break;
    default: c.rule_set = RuleSet::kSEL; break;
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: c.cds_options.strategy = Strategy::kSequential; break;
    case 1: c.cds_options.strategy = Strategy::kSimultaneous; break;
    default: c.cds_options.strategy = Strategy::kVerified; break;
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: c.energy_key_quantum = 0.0; break;
    case 1: c.energy_key_quantum = 1.0; break;
    default: c.energy_key_quantum = 7.0; break;
  }
  // Stability-key EWMA shape (read only by SEL runs, always round-tripped).
  // Quantum 0 keeps raw EWMA values; coarse buckets force ties so the
  // energy/id tie-break chain below the stability key is exercised too.
  c.stability_beta = rng.uniform(0.0, 1.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: c.stability_quantum = 0.0; break;
    case 1: c.stability_quantum = 0.5; break;
    default: c.stability_quantum = 2.0; break;
  }
  c.engine = SimEngine::kAuto;
  // Tile-count dimension for the tiled-engine identity oracle: auto layout,
  // degenerate single tile, small grids, and an over-request that must clamp.
  switch (rng.uniform_int(0, 4)) {
    case 0: c.tiles = 0; break;
    case 1: c.tiles = 1; break;
    case 2: c.tiles = 4; break;
    case 3: c.tiles = 16; break;
    default: c.tiles = 4096; break;
  }
  switch (rng.uniform_int(0, 4)) {
    case 0: c.threads = 2; break;
    case 1: c.threads = 3; break;
    case 2: c.threads = 8; break;
    default: c.threads = 1; break;
  }
  // Short trials keep a 200-iteration run in seconds; degenerate
  // configurations still terminate well below the cap.
  c.max_intervals = 300;
  c.connect_retries = 50;

  if (rng.bernoulli(0.5)) {
    const long crashes = rng.uniform_int(0, 2);
    for (long i = 0; i < crashes; ++i) {
      CrashSpec crash;
      crash.node = static_cast<int>(rng.uniform_int(0, c.n_hosts - 1));
      crash.at = rng.uniform_int(1, 15);
      crash.recover_at =
          rng.bernoulli(0.5) ? 0 : crash.at + rng.uniform_int(1, 10);
      s.faults.crashes.push_back(crash);
    }
    const long thefts = rng.uniform_int(0, 2);
    for (long i = 0; i < thefts; ++i) {
      TheftSpec theft;
      theft.node = static_cast<int>(rng.uniform_int(0, c.n_hosts - 1));
      theft.at = rng.uniform_int(1, 15);
      theft.amount = rng.uniform(5.0, 60.0);
      s.faults.thefts.push_back(theft);
    }
    if (rng.bernoulli(0.25)) {
      BlackoutSpec blackout;
      const double xa = rng.uniform(0.0, c.field_width);
      const double xb = rng.uniform(0.0, c.field_width);
      const double ya = rng.uniform(0.0, c.field_height);
      const double yb = rng.uniform(0.0, c.field_height);
      blackout.x0 = std::min(xa, xb);
      blackout.x1 = std::max(xa, xb);
      blackout.y0 = std::min(ya, yb);
      blackout.y1 = std::max(ya, yb);
      blackout.at = rng.uniform_int(1, 10);
      blackout.until = rng.bernoulli(0.5) ? 0 : blackout.at + rng.uniform_int(1, 8);
      s.faults.blackouts.push_back(blackout);
    }
  }
  if (rng.bernoulli(0.4)) {
    s.faults.seed = rng.next() & kSeedMask;
    s.faults.channel.drop = rng.uniform(0.0, 0.4);
    s.faults.channel.duplicate = rng.uniform(0.0, 0.2);
    s.faults.channel.delay = rng.uniform(0.0, 0.2);
  }
  // Serve-tick granularity: single-interval, small odd chunks, and the
  // run-everything spelling all exercised by the serve-identity oracle.
  switch (rng.uniform_int(0, 3)) {
    case 0: s.serve_ticks = 0; break;
    case 1: s.serve_ticks = 1; break;
    case 2: s.serve_ticks = 3; break;
    default: s.serve_ticks = 7; break;
  }
  return s;
}

std::string describe(const FuzzScenario& s) {
  std::ostringstream out;
  out << "id=" << s.id << " trial_seed=" << s.trial_seed << " n="
      << s.config.n_hosts << " radius="
      << JsonWriter::format_double(s.config.radius) << " scheme="
      << to_string(s.config.rule_set) << " strategy="
      << to_string(s.config.cds_options.strategy) << " threads="
      << s.config.threads << " tiles=" << s.config.tiles << " boundary="
      << to_string(s.config.boundary)
      << " link=" << to_string(s.config.link_model) << " radio="
      << to_string(s.config.radio) << " mobility="
      << to_string(s.config.mobility_kind) << " depth="
      << JsonWriter::format_double(s.config.field_depth) << " drain="
      << drain_model_name(s.config.drain_model) << " quantum="
      << JsonWriter::format_double(s.config.energy_key_quantum) << " events="
      << resolve_schedule(s.faults).size()
      << (s.faults.channel.any() ? " channel=faulty" : "")
      << " serve_ticks=" << s.serve_ticks;
  return out.str();
}

void write_scenario(JsonWriter& json, const FuzzScenario& s) {
  json.begin_object();
  json.key("format").value(kCorpusFormat);
  json.key("schema").value(kCorpusSchemaVersion);
  json.key("id").value(s.id);
  json.key("trial_seed").value(s.trial_seed);
  json.key("serve_ticks").value(s.serve_ticks);
  json.key("config");
  write_sim_config_json(json, s.config);
  json.key("faults");
  write_fault_plan(json, s.faults);
  json.end_object();
}

std::string scenario_to_json(const FuzzScenario& s) {
  std::ostringstream out;
  JsonWriter json(out, 2);
  write_scenario(json, s);
  out << "\n";
  return out.str();
}

FuzzScenario parse_scenario(std::string_view text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) fail("document must be a JSON object");
  FuzzScenario s;
  bool have_format = false;
  bool have_schema = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "format") {
      if (string_of(value, "format") != kCorpusFormat) {
        fail("format must be \"" + std::string(kCorpusFormat) + "\"");
      }
      have_format = true;
    } else if (key == "schema") {
      if (integer_of(value, "schema", 1, 1e6) != kCorpusSchemaVersion) {
        fail("unsupported schema version");
      }
      have_schema = true;
    } else if (key == "id") {
      s.id = static_cast<std::uint64_t>(integer_of(value, "id", 0, 9e15));
    } else if (key == "trial_seed") {
      s.trial_seed =
          static_cast<std::uint64_t>(integer_of(value, "trial_seed", 0, 9e15));
    } else if (key == "serve_ticks") {
      // Optional (default 0) so pre-serve corpus reproducers keep parsing.
      s.serve_ticks =
          static_cast<int>(integer_of(value, "serve_ticks", 0, 1e6));
    } else if (key == "config") {
      // Shared wire format (sim/config_json), with this module's error
      // prefix so corpus diagnostics read as before.
      parse_sim_config_json(value, s.config, "fuzz scenario: ");
    } else if (key == "faults") {
      // Re-serialize the sub-document and delegate to the fault-plan parser,
      // so corpus files share exactly its strict schema and range rules.
      std::ostringstream plan_text;
      JsonWriter plan_json(plan_text);
      write_json(plan_json, value);
      s.faults = parse_fault_plan(plan_text.str());
    } else {
      fail("unknown top-level key \"" + key + "\"");
    }
  }
  if (!have_format || !have_schema) fail("needs \"format\" and \"schema\"");
  validate_fault_plan(s.faults, s.config.n_hosts);
  return s;
}

FuzzScenario load_scenario(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error(path + ": cannot open");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return parse_scenario(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace pacds::fuzz
