#pragma once
// Greedy reproducer minimization. Given a scenario that fails some oracle,
// repeatedly try simplifying transforms — halve the host count, drop fault
// events, drop the channel faults, drop threads to 1, shorten the interval
// cap — and keep a transform whenever the shrunk scenario still fails the
// *same* oracle. The result is the smallest instance the greedy pass can
// reach, which is what lands in the corpus as a reproducer.

#include <cstddef>
#include <string>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace pacds::fuzz {

/// Outcome of one shrink run.
struct ShrinkResult {
  FuzzScenario scenario;   ///< the minimized failing instance
  std::string oracle;      ///< the oracle it still fails (== the original)
  std::string detail;      ///< that oracle's diagnosis on the shrunk instance
  std::size_t steps_tried = 0;  ///< candidate transforms evaluated
  std::size_t steps_kept = 0;   ///< transforms that preserved the failure
};

/// Minimizes `scenario`, which must currently fail oracle `oracle` under
/// `options` (pass the OracleFailure::oracle string from run_oracles).
/// Deterministic; every accepted step re-runs the full oracle suite, so the
/// returned scenario is guaranteed to still reproduce the failure.
[[nodiscard]] ShrinkResult shrink_scenario(const FuzzScenario& scenario,
                                           const std::string& oracle,
                                           const OracleOptions& options = {});

}  // namespace pacds::fuzz
