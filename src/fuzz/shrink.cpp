#include "fuzz/shrink.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <vector>

namespace pacds::fuzz {

namespace {

/// Drops plan events that reference hosts outside [0, n) — required after a
/// host-count shrink so the candidate still passes validate_fault_plan.
void clamp_plan_to_hosts(FaultPlan& plan, int n) {
  std::erase_if(plan.crashes,
                [n](const CrashSpec& c) { return c.node >= n; });
  std::erase_if(plan.thefts, [n](const TheftSpec& t) { return t.node >= n; });
}

struct Transform {
  const char* name;
  std::function<bool(FuzzScenario&)> apply;  ///< false = not applicable
};

std::vector<Transform> transforms() {
  return {
      {"halve-hosts",
       [](FuzzScenario& s) {
         if (s.config.n_hosts <= 4) return false;
         s.config.n_hosts = std::max(4, s.config.n_hosts / 2);
         clamp_plan_to_hosts(s.faults, s.config.n_hosts);
         return true;
       }},
      {"drop-crashes",
       [](FuzzScenario& s) {
         if (s.faults.crashes.empty()) return false;
         s.faults.crashes.clear();
         return true;
       }},
      {"drop-thefts",
       [](FuzzScenario& s) {
         if (s.faults.thefts.empty()) return false;
         s.faults.thefts.clear();
         return true;
       }},
      {"drop-blackouts",
       [](FuzzScenario& s) {
         if (s.faults.blackouts.empty()) return false;
         s.faults.blackouts.clear();
         return true;
       }},
      {"drop-last-crash",
       [](FuzzScenario& s) {
         if (s.faults.crashes.empty()) return false;
         s.faults.crashes.pop_back();
         return true;
       }},
      {"drop-last-theft",
       [](FuzzScenario& s) {
         if (s.faults.thefts.empty()) return false;
         s.faults.thefts.pop_back();
         return true;
       }},
      {"drop-channel-faults",
       [](FuzzScenario& s) {
         if (!s.faults.channel.any()) return false;
         s.faults.channel = dist::ChannelFaultConfig{};
         return true;
       }},
      {"serial-threads",
       [](FuzzScenario& s) {
         if (s.config.threads == 1) return false;
         s.config.threads = 1;
         return true;
       }},
      {"cap-intervals",
       [](FuzzScenario& s) {
         if (s.config.max_intervals <= 50) return false;
         s.config.max_intervals = 50;
         return true;
       }},
      {"disable-quantum",
       [](FuzzScenario& s) {
         if (s.config.energy_key_quantum == 0.0) return false;
         s.config.energy_key_quantum = 0.0;
         return true;
       }},
  };
}

/// The failing oracle's detail on `scenario`, or empty when the scenario no
/// longer fails that oracle (the shrink step is then rejected).
std::string failure_detail(const FuzzScenario& scenario,
                           const std::string& oracle,
                           const OracleOptions& options) {
  for (const OracleFailure& failure : run_oracles(scenario, options)) {
    if (failure.oracle == oracle) return failure.detail;
  }
  return {};
}

}  // namespace

ShrinkResult shrink_scenario(const FuzzScenario& scenario,
                             const std::string& oracle,
                             const OracleOptions& options) {
  ShrinkResult result;
  result.scenario = scenario;
  result.oracle = oracle;
  result.detail = failure_detail(scenario, oracle, options);
  if (result.detail.empty()) {
    throw std::invalid_argument(
        "shrink_scenario: scenario does not fail oracle \"" + oracle + "\"");
  }
  // Greedy fixpoint: retry the whole transform list after every accepted
  // step (an accepted halving can make an event drop newly applicable).
  const std::vector<Transform> steps = transforms();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Transform& step : steps) {
      FuzzScenario candidate = result.scenario;
      if (!step.apply(candidate)) continue;
      ++result.steps_tried;
      const std::string detail = failure_detail(candidate, oracle, options);
      if (detail.empty()) continue;
      result.scenario = std::move(candidate);
      result.detail = detail;
      ++result.steps_kept;
      progressed = true;
    }
  }
  return result;
}

}  // namespace pacds::fuzz
