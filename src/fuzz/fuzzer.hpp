#pragma once
// The fuzzing campaign driver behind `pacds fuzz`: replay the committed
// corpus (regression reproducers must run clean), then generate seeded
// random scenarios and run the oracle suite on each until the iteration or
// time budget runs out. Every fresh failure is shrunk (see shrink.hpp) and
// written to the corpus directory as a strict-JSON reproducer, so a red run
// always leaves a minimized, replayable artifact behind.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"

namespace pacds::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;        ///< base seed of the scenario stream
  std::uint64_t iterations = 100;
  /// Wall-clock cap in seconds; 0 = iterations only. Whichever budget runs
  /// out first ends the campaign (corpus replay is never skipped).
  double time_budget_seconds = 0.0;
  /// Directory of *.json reproducers: replayed before the random campaign,
  /// and where new minimized reproducers are written. Empty = no corpus.
  std::string corpus_dir;
  /// Mutation-testing hook forwarded to every oracle pass (tests only).
  int mutation = kMutateNone;
};

/// One finding: the minimized scenario, the oracle it violates, and where
/// the reproducer was written ("" when there is no corpus directory).
struct FuzzFinding {
  std::string oracle;
  std::string detail;        ///< diagnosis on the *minimized* scenario
  std::string source;        ///< "iteration N" or the replayed corpus path
  std::string reproducer;    ///< path of the written corpus file, or ""
  FuzzScenario scenario;     ///< minimized (replay failures: as loaded)
};

struct FuzzReport {
  std::size_t corpus_replayed = 0;
  std::uint64_t iterations = 0;
  std::vector<FuzzFinding> findings;
  /// Corpus files that failed to parse (malformed reproducers are findings
  /// too — a corrupt corpus must not pass silently).
  std::vector<std::string> corpus_errors;

  [[nodiscard]] bool ok() const noexcept {
    return findings.empty() && corpus_errors.empty();
  }
};

/// Runs the campaign; progress and findings are narrated to `log`.
/// Deterministic in (options) apart from the time budget's cutoff point.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options,
                                  std::ostream& log);

}  // namespace pacds::fuzz
