#include "fuzz/oracles.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <vector>

#include "baselines/bb_mcds.hpp"
#include "baselines/cds22.hpp"
#include "baselines/exact_mcds.hpp"
#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/cds.hpp"
#include "core/simd.hpp"
#include "core/verify.hpp"
#include "dist/protocol.hpp"
#include "energy/traffic.hpp"
#include "io/json.hpp"
#include "io/json_parse.hpp"
#include "net/geometric.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "obs/jsonl.hpp"
#include "obs/validate.hpp"
#include "serve/server.hpp"
#include "sim/config_json.hpp"
#include "sim/engine.hpp"
#include "sim/montecarlo.hpp"
#include "sim/tiled_engine.hpp"
#include "sim/trace.hpp"

namespace pacds::fuzz {

namespace {

struct TrialRun {
  TrialResult result;
  SimTrace trace;
};

TrialRun run_trial(const SimConfig& config, std::uint64_t seed,
                   const FaultPlan* faults) {
  TrialRun run;
  run.result = run_lifetime_trial(config, seed, &run.trace, faults);
  return run;
}

std::string fmt(double number) { return JsonWriter::format_double(number); }

/// "" when the two runs agree on everything deterministic; otherwise the
/// first difference. Wall-clock fields (phase_ns, repair_ns) are always
/// excluded; `with_touched` additionally compares the touched-node counts
/// (identical across thread counts, but not across engines).
std::string diff_runs(const std::string& label_a, const TrialRun& a,
                      const std::string& label_b, const TrialRun& b,
                      bool with_touched) {
  std::ostringstream out;
  out << label_a << " vs " << label_b << ": ";
  const TrialResult& ra = a.result;
  const TrialResult& rb = b.result;
  if (ra.intervals != rb.intervals) {
    out << "intervals " << ra.intervals << " != " << rb.intervals;
    return out.str();
  }
  if (ra.avg_gateways != rb.avg_gateways || ra.avg_marked != rb.avg_marked) {
    out << "per-interval means differ (avg_gateways " << fmt(ra.avg_gateways)
        << " vs " << fmt(rb.avg_gateways) << ", avg_marked "
        << fmt(ra.avg_marked) << " vs " << fmt(rb.avg_marked) << ")";
    return out.str();
  }
  if (ra.hit_cap != rb.hit_cap ||
      ra.initial_connected != rb.initial_connected ||
      ra.placement_attempts != rb.placement_attempts) {
    out << "termination/placement flags differ";
    return out.str();
  }
  FaultStats fa = ra.faults;
  FaultStats fb = rb.faults;
  fa.repair_ns_total = 0;
  fb.repair_ns_total = 0;
  if (!with_touched) {
    // Touched-node counts depend on how localized the engine's update is.
    fa.repair_touched_total = 0;
    fb.repair_touched_total = 0;
  }
  if (!(fa == fb)) {
    out << "fault stats differ (deaths " << fa.deaths << " vs " << fb.deaths
        << ", events " << fa.events << " vs " << fb.events << ", repairs "
        << fa.repairs << " vs " << fb.repairs << ", first death "
        << fa.first_death_interval << " vs " << fb.first_death_interval
        << ")";
    return out.str();
  }
  if (a.trace.records.size() != b.trace.records.size()) {
    out << "interval record counts differ";
    return out.str();
  }
  for (std::size_t i = 0; i < a.trace.records.size(); ++i) {
    const IntervalRecord& x = a.trace.records[i];
    const IntervalRecord& y = b.trace.records[i];
    const bool same = x.interval == y.interval && x.marked == y.marked &&
                      x.gateways == y.gateways && x.alive == y.alive &&
                      x.min_energy == y.min_energy &&
                      x.mean_energy == y.mean_energy &&
                      x.max_energy == y.max_energy &&
                      (!with_touched || x.touched == y.touched);
    if (!same) {
      out << "interval record " << i << " differs (gateways " << x.gateways
          << " vs " << y.gateways << ", mean energy " << fmt(x.mean_energy)
          << " vs " << fmt(y.mean_energy) << ")";
      return out.str();
    }
  }
  if (a.trace.fault_records.size() != b.trace.fault_records.size()) {
    out << "fault record counts differ";
    return out.str();
  }
  for (std::size_t i = 0; i < a.trace.fault_records.size(); ++i) {
    const FaultRecord& x = a.trace.fault_records[i];
    const FaultRecord& y = b.trace.fault_records[i];
    const bool same = x.interval == y.interval && x.kind == y.kind &&
                      x.cause == y.cause && x.node == y.node &&
                      x.amount == y.amount && x.down == y.down &&
                      x.backbone_ok == y.backbone_ok &&
                      x.coverage == y.coverage && x.gateways == y.gateways &&
                      (!with_touched || x.touched == y.touched);
    if (!same) {
      out << "fault record " << i << " differs (kind "
          << to_string(x.kind) << " vs " << to_string(y.kind) << " at "
          << x.interval << " vs " << y.interval << ")";
      return out.str();
    }
  }
  return {};
}

/// Connected network snapshot for the structural oracles (CDS validity and
/// the distributed protocol agree with the pinned properties only on
/// connected graphs). Empty optional when no connected placement exists in
/// the scenario's (n, radius) regime — those oracles then skip.
struct Snapshot {
  Graph graph;
  std::vector<double> energy;
};

std::optional<Snapshot> make_snapshot(const FuzzScenario& s) {
  Xoshiro256 rng(derive_seed(s.trial_seed, 0x0f5aU));
  const Field field(s.config.field_width, s.config.field_height,
                    s.config.boundary);
  auto placed = random_connected_placement(s.config.n_hosts, field,
                                           s.config.radius, rng, 40);
  if (!placed) return std::nullopt;
  Snapshot snap;
  // The scenario's proximity model over the connected point set: Gabriel and
  // RNG are connected subgraphs of the unit-disk graph, so connectivity
  // survives the sparsification.
  snap.graph = s.config.link_model == LinkModel::kUnitDisk
                   ? std::move(placed->graph)
                   : build_links(placed->positions, s.config.radius,
                                 s.config.link_model);
  // Small integer energies so EL-key ties (and their tie-break chains)
  // actually occur.
  snap.energy.reserve(static_cast<std::size_t>(s.config.n_hosts));
  for (int i = 0; i < s.config.n_hosts; ++i) {
    snap.energy.push_back(static_cast<double>(rng.uniform_int(1, 6)));
  }
  return snap;
}

void check_cds_validity(const FuzzScenario& s, const Snapshot& snap,
                        const OracleOptions& opts,
                        std::vector<OracleFailure>& failures) {
  const auto fail = [&](const std::string& detail) {
    failures.push_back({"cds-validity", detail + " [" + describe(s) + "]"});
  };
  const CdsResult cds =
      compute_cds(snap.graph, s.config.rule_set, snap.energy, s.config.cds_options);
  std::size_t gateway_count = cds.gateway_count;
  if (opts.mutation == kMutateCdsValidity) ++gateway_count;
  if (gateway_count != cds.gateways.count() ||
      cds.marked_count != cds.marked_only.count()) {
    fail("CdsResult counts disagree with the bitsets (gateway_count " +
         std::to_string(gateway_count) + " vs " +
         std::to_string(cds.gateways.count()) + ")");
    return;
  }
  for (std::size_t v = 0; v < cds.gateways.size(); ++v) {
    if (cds.gateways.test(v) && !cds.marked_only.test(v)) {
      fail("rules grew the marked set: node " + std::to_string(v) +
           " is a gateway but was never marked");
      return;
    }
  }
  const CdsCheck marking = check_cds(snap.graph, cds.marked_only);
  if (!marking.ok()) {
    fail("marking-process output is not a valid CDS: " + marking.message);
    return;
  }
  // The simultaneous strategy's final set is known-unsafe (documented flaw,
  // pinned by SimultaneousSafetyTest) — only the safe strategies assert it.
  if (s.config.cds_options.strategy != Strategy::kSimultaneous) {
    const CdsCheck final_set = check_cds(snap.graph, cds.gateways);
    if (!final_set.ok()) {
      fail("final gateway set is not a valid CDS under " +
           to_string(s.config.cds_options.strategy) + ": " +
           final_set.message);
    }
  }
}

void check_gap_bound(const FuzzScenario& s, const Snapshot& snap,
                     const OracleOptions& opts,
                     std::vector<OracleFailure>& failures) {
  const auto fail = [&](const std::string& detail) {
    failures.push_back({"gap-bound", detail + " [" + describe(s) + "]"});
  };
  const Graph& g = snap.graph;
  // Modest budget: fuzz graphs top out at n = 48, where the solver needs
  // well under a million nodes; a pathological instance skips instead of
  // stalling the run.
  BbStats stats;
  const auto bb = bb_min_cds(g, BbOptions{2'000'000}, &stats);
  if (!bb) return;
  if (!check_cds(g, *bb).ok()) {
    fail("branch-and-bound output is not a valid CDS");
    return;
  }
  std::size_t optimum = bb->count();
  if (opts.mutation == kMutateGapBound) ++optimum;
  if (g.num_nodes() <= 20) {
    const auto exact = exact_min_cds(g, 20);
    if (exact && exact->count() != optimum) {
      fail("branch-and-bound optimum " + std::to_string(optimum) +
           " disagrees with the bitmask optimum " +
           std::to_string(exact->count()));
      return;
    }
  }
  const Cds22Result backbone = greedy_cds22(g);
  const struct {
    const char* name;
    std::size_t size;
  } bounded[] = {
      {"greedy", greedy_mcds(g).count()},
      {"MIS", mis_cds(g).count()},
      {"tree", bfs_tree_cds(g).count()},
      {"(2,2)", backbone.backbone.count()},
      {"marking", compute_cds(g, s.config.rule_set, snap.energy,
                              s.config.cds_options)
                      .marked_count},
  };
  for (const auto& h : bounded) {
    if (h.size < optimum) {
      fail(std::string(h.name) + " CDS size " + std::to_string(h.size) +
           " undercuts the proven optimum " + std::to_string(optimum));
      return;
    }
  }
  if (!check_cds(g, backbone.backbone).ok()) {
    fail("(2,2) backbone is not a valid plain CDS");
    return;
  }
  const Cds22Check check22 = check_cds22(g, backbone.backbone);
  if (backbone.full_22 != check22.ok()) {
    fail("full_22 flag disagrees with check_cds22: " +
         (check22.message.empty() ? std::string("(no message)")
                                  : check22.message));
    return;
  }
  if (backbone.full_22) {
    // The survival property the backbone is for: losing any one member
    // still leaves a valid plain CDS (the crashed host drops out as an
    // exempt isolated singleton).
    bool survived = true;
    backbone.backbone.for_each_set([&](std::size_t v) {
      if (!survived) return;
      Graph crashed = g;
      const auto vid = static_cast<NodeId>(v);
      while (!crashed.neighbors(vid).empty()) {
        crashed.remove_edge(vid, crashed.neighbors(vid).front());
      }
      DynBitset survivors = backbone.backbone;
      survivors.reset(v);
      if (!check_cds(crashed, survivors).ok()) {
        survived = false;
        fail("(2,2) backbone does not survive the loss of member " +
             std::to_string(v));
      }
    });
  }
}

void check_dist_agreement(const FuzzScenario& s, const Snapshot& snap,
                          const OracleOptions& opts,
                          std::vector<OracleFailure>& failures) {
  const auto fail = [&](const std::string& detail) {
    failures.push_back({"dist-agreement", detail + " [" + describe(s) + "]"});
  };
  const dist::ProtocolResult proto =
      dist::run_protocol_scheme(snap.graph, s.config.rule_set, snap.energy);
  CdsOptions options;
  options.strategy = Strategy::kSimultaneous;
  const CdsResult central =
      compute_cds(snap.graph, s.config.rule_set, snap.energy, options);
  DynBitset proto_gateways = proto.gateways;
  if (opts.mutation == kMutateDistAgreement) {
    proto_gateways.set(0, !proto_gateways.test(0));
  }
  if (!(proto_gateways == central.gateways)) {
    fail("distributed protocol and centralized simultaneous compute_cds "
         "disagree (" + std::to_string(proto_gateways.count()) + " vs " +
         std::to_string(central.gateways.count()) + " gateways)");
    return;
  }
  // A zero-fault channel must be *exactly* the reliable run (no RNG draws).
  const dist::FaultyProtocolResult arq_clean = dist::run_faulty_protocol(
      snap.graph, s.config.rule_set, dist::ChannelFaultConfig{},
      s.faults.retry, s.faults.seed, snap.energy);
  if (!arq_clean.complete || !(arq_clean.protocol.gateways == proto.gateways) ||
      arq_clean.protocol.total_msgs() != proto.total_msgs() ||
      arq_clean.retransmissions != 0) {
    fail("zero-fault ARQ run differs from the reliable protocol run");
    return;
  }
  if (s.faults.channel.any()) {
    const dist::FaultyProtocolResult arq = dist::run_faulty_protocol(
        snap.graph, s.config.rule_set, s.faults.channel, s.faults.retry,
        s.faults.seed, snap.energy);
    if (arq.complete && !(arq.protocol.gateways == proto.gateways)) {
      fail("complete faulty-channel ARQ run decided a different gateway set "
           "(loss must cost airtime, never correctness)");
    }
  }
}

void check_engine_identity(const FuzzScenario& s, const OracleOptions& opts,
                           std::vector<OracleFailure>& failures) {
  if (!incremental_engine_eligible(s.config)) return;
  SimConfig full = s.config;
  full.engine = SimEngine::kFullRebuild;
  SimConfig incremental = s.config;
  incremental.engine = SimEngine::kIncremental;
  const FaultPlan* plan = s.faults.has_lifetime_events() ? &s.faults : nullptr;
  const TrialRun a = run_trial(full, s.trial_seed, plan);
  TrialRun b = run_trial(incremental, s.trial_seed, plan);
  if (opts.mutation == kMutateEngineIdentity) ++b.result.intervals;
  const std::string diff =
      diff_runs("full-rebuild", a, "incremental", b, /*with_touched=*/false);
  if (!diff.empty()) {
    failures.push_back({"engine-identity", diff + " [" + describe(s) + "]"});
  }
  if (tiled_engine_eligible(s.config)) {
    SimConfig tiled = s.config;
    tiled.engine = SimEngine::kTiled;
    const TrialRun c = run_trial(tiled, s.trial_seed, plan);
    const std::string tdiff =
        diff_runs("full-rebuild", a, "tiled", c, /*with_touched=*/false);
    if (!tdiff.empty()) {
      failures.push_back({"engine-identity", tdiff + " [" + describe(s) + "]"});
    }
  }
}

void check_threads_identity(const FuzzScenario& s, const OracleOptions& opts,
                            std::vector<OracleFailure>& failures) {
  if (s.config.threads == 1) return;
  SimConfig serial = s.config;
  serial.threads = 1;
  const FaultPlan* plan = s.faults.has_lifetime_events() ? &s.faults : nullptr;
  const TrialRun a = run_trial(serial, s.trial_seed, plan);
  TrialRun b = run_trial(s.config, s.trial_seed, plan);
  if (opts.mutation == kMutateThreadsIdentity) {
    b.result.avg_gateways += 1.0;
  }
  const std::string diff =
      diff_runs("threads=1", a, "threads=" + std::to_string(s.config.threads),
                b, /*with_touched=*/true);
  if (!diff.empty()) {
    failures.push_back({"threads-identity", diff + " [" + describe(s) + "]"});
  }
}

void check_lifetime_invariants(const FuzzScenario& s,
                               const OracleOptions& opts,
                               std::vector<OracleFailure>& failures) {
  const FaultPlan* plan = s.faults.has_lifetime_events() ? &s.faults : nullptr;
  const TrialRun run = run_trial(s.config, s.trial_seed, plan);
  const auto energy_fail = [&](const std::string& detail) {
    failures.push_back(
        {"energy-conservation", detail + " [" + describe(s) + "]"});
  };
  const auto stats_fail = [&](const std::string& detail) {
    failures.push_back({"fault-stats", detail + " [" + describe(s) + "]"});
  };

  const auto n = static_cast<double>(s.config.n_hosts);
  const auto n_hosts = static_cast<std::size_t>(s.config.n_hosts);
  if (run.trace.records.size() !=
      static_cast<std::size_t>(run.result.intervals)) {
    energy_fail("one record per interval violated: " +
                std::to_string(run.trace.records.size()) + " records for " +
                std::to_string(run.result.intervals) + " intervals");
    return;
  }
  const double mutation_shift =
      opts.mutation == kMutateEnergyAccounting ? 1.0 : 0.0;
  double prev_total = n * s.config.initial_energy;
  constexpr double kTolerance = 1e-6;
  for (std::size_t i = 0; i < run.trace.records.size(); ++i) {
    const IntervalRecord& record = run.trace.records[i];
    const long interval = static_cast<long>(i) + 1;
    if (record.interval != interval) {
      energy_fail("record " + std::to_string(i) + " carries interval " +
                  std::to_string(record.interval));
      return;
    }
    const double total = record.mean_energy * n + mutation_shift;
    if (record.min_energy > record.mean_energy + kTolerance ||
        record.mean_energy > record.max_energy + kTolerance ||
        record.max_energy > s.config.initial_energy + kTolerance ||
        record.min_energy < 0.0) {
      energy_fail("energy distribution out of bounds at interval " +
                  std::to_string(interval) + " (min " +
                  fmt(record.min_energy) + ", mean " +
                  fmt(record.mean_energy) + ", max " +
                  fmt(record.max_energy) + ")");
      return;
    }
    if (total > prev_total + kTolerance) {
      energy_fail("total energy grew at interval " + std::to_string(interval) +
                  " (" + fmt(prev_total) + " -> " + fmt(total) + ")");
      return;
    }
    // Drain ledger. Every functioning non-gateway pays d', every active
    // gateway pays d, and battery clamps at zero. Intervals where a clamp
    // can hide are excluded from the exact check: a death (degraded mode
    // records it; the paper's run ends on it, so there its marker is the
    // final non-capped interval — fault-free trials emit no fault records).
    // Theft records carry the *requested* amount — a theft on an
    // already-dead host removes nothing — so thefts widen the exact check
    // into a [expected, expected + thefts] band.
    bool death_here = false;
    double theft_here = 0.0;
    for (const FaultRecord& event : run.trace.fault_records) {
      if (event.interval != interval) continue;
      if (event.kind == FaultKind::kDeath) death_here = true;
      if (event.kind == FaultKind::kTheft) theft_here += event.amount;
    }
    const bool fault_free_final_death =
        plan == nullptr && i + 1 == run.trace.records.size() &&
        !run.result.hit_cap;
    if (!death_here && !fault_free_final_death) {
      const auto down = static_cast<std::size_t>(
          record.counters[static_cast<std::size_t>(obs::Counter::kHostsDown)]);
      const std::size_t functioning = n_hosts - down;
      const double d = gateway_drain(s.config.drain_model, n_hosts,
                                     record.gateways, s.config.drain_params);
      const double expected =
          static_cast<double>(record.gateways) * d +
          static_cast<double>(functioning - record.gateways) *
              s.config.drain_params.nongateway_drain;
      const double actual = prev_total - total;
      if (actual < expected - kTolerance ||
          actual > expected + theft_here + kTolerance) {
        energy_fail("drain ledger off at interval " + std::to_string(interval) +
                    ": removed " + fmt(actual) + ", expected " +
                    fmt(expected) + " (" + std::to_string(record.gateways) +
                    " gateways x d=" + fmt(d) + " + " +
                    std::to_string(functioning - record.gateways) +
                    " x d'=" + fmt(s.config.drain_params.nongateway_drain) +
                    ") plus up to " + fmt(theft_here) + " stolen");
        return;
      }
    }
    prev_total = total;
  }

  // Fault-stats consistency against the trace (all-zero and -1 sentinel for
  // fault-free runs; tallies must equal the record counts otherwise).
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  std::size_t thefts = 0;
  std::size_t deaths = 0;
  std::size_t repairs = 0;
  long first_death = -1;
  for (const FaultRecord& event : run.trace.fault_records) {
    switch (event.kind) {
      case FaultKind::kCrash: ++crashes; break;
      case FaultKind::kRecover: ++recoveries; break;
      case FaultKind::kTheft: ++thefts; break;
      case FaultKind::kDeath:
        ++deaths;
        if (first_death < 0) first_death = event.interval;
        break;
      case FaultKind::kRepair: ++repairs; break;
    }
  }
  FaultStats observed = run.result.faults;
  if (opts.mutation == kMutateFaultStats) ++observed.deaths;
  if (observed.crashes != crashes || observed.recoveries != recoveries ||
      observed.thefts != thefts || observed.deaths != deaths ||
      observed.repairs != repairs ||
      observed.events != crashes + recoveries + thefts) {
    stats_fail("tallies disagree with the trace (deaths " +
               std::to_string(observed.deaths) + " vs " +
               std::to_string(deaths) + ", events " +
               std::to_string(observed.events) + " vs " +
               std::to_string(crashes + recoveries + thefts) + ")");
    return;
  }
  if (observed.first_death_interval != first_death) {
    stats_fail("first_death_interval " +
               std::to_string(observed.first_death_interval) +
               " but the trace says " + std::to_string(first_death) +
               " (-1 = no death)");
    return;
  }
  if (observed.min_coverage < 0.0 || observed.min_coverage > 1.0) {
    stats_fail("min_coverage " + fmt(observed.min_coverage) +
               " outside [0, 1]");
  }
}

void check_jsonl_schema(const FuzzScenario& s, const OracleOptions& opts,
                        std::vector<OracleFailure>& failures) {
  std::ostringstream buffer;
  obs::JsonlSink sink(buffer);
  const FaultPlan* plan = s.faults.empty() ? nullptr : &s.faults;
  (void)run_lifetime_trials(s.config, 1, s.trial_seed, nullptr, &sink, plan);
  std::string text = buffer.str();
  if (opts.mutation == kMutateJsonl) text += "{\"type\":broken\n";
  std::istringstream lines(text);
  const obs::StreamValidation validation =
      obs::validate_metrics_stream(lines);
  if (!validation.ok) {
    failures.push_back({"jsonl-schema",
                        validation.error + " [" + describe(s) + "]"});
  }
}

void check_empty_plan_identity(const FuzzScenario& s,
                               const OracleOptions& opts,
                               std::vector<OracleFailure>& failures) {
  if (s.faults.has_lifetime_events()) return;
  const TrialRun bare = run_trial(s.config, s.trial_seed, nullptr);
  TrialRun planned = run_trial(s.config, s.trial_seed, &s.faults);
  if (opts.mutation == kMutateEmptyPlanIdentity) ++planned.result.intervals;
  const std::string diff = diff_runs("no plan", bare, "event-free plan",
                                     planned, /*with_touched=*/true);
  if (!diff.empty()) {
    failures.push_back(
        {"empty-plan-identity", diff + " [" + describe(s) + "]"});
  }
}

void check_simd_identity(const FuzzScenario& s, const OracleOptions& opts,
                         std::vector<OracleFailure>& failures) {
  // Forces the whole trial through the scalar kernel table, then through
  // the host's best vector level, and demands bit-identity. Engines,
  // rule passes and the dense/tiled kernels all route their word loops
  // through simd::active(), so this covers every consumer at once.
  if (simd::available_levels().size() < 2) return;
  const simd::Level before = simd::active_level();
  const FaultPlan* plan = s.faults.has_lifetime_events() ? &s.faults : nullptr;
  simd::set_level(simd::Level::kScalar);
  const TrialRun a = run_trial(s.config, s.trial_seed, plan);
  simd::set_level(simd::detect_best());
  TrialRun b = run_trial(s.config, s.trial_seed, plan);
  simd::set_level(before);
  if (opts.mutation == kMutateSimdIdentity) ++b.result.intervals;
  const std::string diff = diff_runs(
      "simd=scalar", a,
      std::string("simd=") + simd::to_string(simd::detect_best()), b,
      /*with_touched=*/true);
  if (!diff.empty()) {
    failures.push_back({"simd-identity", diff + " [" + describe(s) + "]"});
  }
}

/// Canonical, timing-free form of a JSONL metrics stream: every record
/// re-serialized with "*_ns" values zeroed, serve envelope records
/// (serve_response / serve_error) dropped and the "tenant" tag removed —
/// the same normalization tests/serve_test.cpp pins, so the serve path and
/// a standalone run must agree byte for byte on what remains.
std::string canonical_stream(const std::string& stream) {
  std::ostringstream out;
  std::istringstream in(stream);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue record = parse_json(line);
    const JsonValue* type = record.find("type");
    if (type != nullptr && (type->as_string() == "serve_response" ||
                            type->as_string() == "serve_error")) {
      continue;
    }
    JsonWriter json(out);
    json.begin_object();
    for (const auto& [key, value] : record.as_object()) {
      if (key == "tenant") continue;
      json.key(key);
      if (value.is_number() && key.size() > 3 &&
          key.compare(key.size() - 3, 3, "_ns") == 0) {
        json.value(0);
      } else {
        write_json(json, value);
      }
    }
    json.end_object();
    out << "\n";
  }
  return out.str();
}

void check_serve_identity(const FuzzScenario& s, const OracleOptions& opts,
                          std::vector<OracleFailure>& failures) {
  const auto fail = [&](const std::string& detail) {
    failures.push_back({"serve-identity", detail + " [" + describe(s) + "]"});
  };
  // Two trials so a tick budget crosses the trial boundary mid-request —
  // the cached-run rebuild between trials is exactly what can drift.
  constexpr long kTrials = 2;
  const FaultPlan* plan = s.faults.empty() ? nullptr : &s.faults;

  // Standalone twin: serve forces per-trial threading to 1 (its parallelism
  // is across tenants), so the reference run gets the same forced config.
  std::ostringstream standalone;
  {
    obs::JsonlSink sink(standalone);
    (void)run_lifetime_trials(montecarlo_trial_config(s.config, true),
                              kTrials, s.trial_seed, nullptr, &sink, plan);
  }

  std::ostringstream create;
  {
    JsonWriter json(create);
    json.begin_object();
    json.key("op").value("create");
    json.key("tenant").value("fuzz");
    json.key("config");
    write_sim_config_json(json, s.config);
    json.key("seed").value(s.trial_seed);
    json.key("trials").value(static_cast<std::int64_t>(kTrials));
    if (plan != nullptr) {
      json.key("faults");
      write_fault_plan(json, s.faults);
    }
    json.end_object();
  }
  const std::string tick =
      s.serve_ticks > 0
          ? "{\"op\":\"tick\",\"tenant\":\"fuzz\",\"intervals\":" +
                std::to_string(s.serve_ticks) + "}"
          : "{\"op\":\"tick\",\"tenant\":\"fuzz\"}";

  std::ostringstream served;
  serve::Server server(serve::ServeOptions{}, served);
  server.process_lines({create.str()});
  // Tick until the response reports finished; the budget-0 spelling takes
  // one request, chunked ticks at most total-intervals + one per trial.
  const long cap = kTrials * (s.config.max_intervals + 2) + 2;
  for (long i = 0; i < cap; ++i) {
    const std::size_t before = served.str().size();
    server.process_lines({tick});
    if (served.str().find("\"finished\":true", before) != std::string::npos) {
      break;
    }
  }

  std::string serve_canonical = canonical_stream(served.str());
  if (opts.mutation == kMutateServeIdentity) {
    serve_canonical += "{\"type\":\"interval\",\"mutated\":true}\n";
  }
  const std::string standalone_canonical =
      canonical_stream(standalone.str());
  if (serve_canonical == standalone_canonical) return;
  std::istringstream a(serve_canonical);
  std::istringstream b(standalone_canonical);
  std::string la;
  std::string lb;
  std::size_t line_no = 1;
  while (true) {
    const bool got_a = static_cast<bool>(std::getline(a, la));
    const bool got_b = static_cast<bool>(std::getline(b, lb));
    if (!got_a && !got_b) break;
    if (!got_a || !got_b || la != lb) {
      fail("serve stream diverges from run_lifetime_trials at canonical "
           "line " + std::to_string(line_no) + ": serve=" +
           (got_a ? la : "<eof>") + " standalone=" + (got_b ? lb : "<eof>"));
      return;
    }
    ++line_no;
  }
}

}  // namespace

std::vector<OracleFailure> run_oracles(const FuzzScenario& scenario,
                                       const OracleOptions& options) {
  std::vector<OracleFailure> failures;
  if (const auto snap = make_snapshot(scenario)) {
    check_cds_validity(scenario, *snap, options, failures);
    check_gap_bound(scenario, *snap, options, failures);
    check_dist_agreement(scenario, *snap, options, failures);
  }
  check_engine_identity(scenario, options, failures);
  check_threads_identity(scenario, options, failures);
  check_lifetime_invariants(scenario, options, failures);
  check_jsonl_schema(scenario, options, failures);
  check_empty_plan_identity(scenario, options, failures);
  check_simd_identity(scenario, options, failures);
  check_serve_identity(scenario, options, failures);
  return failures;
}

}  // namespace pacds::fuzz
