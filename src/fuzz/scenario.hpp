#pragma once
// Random scenario generation for the differential fuzzing harness, plus the
// strict-JSON corpus (reproducer) format. A FuzzScenario bundles everything
// one oracle pass needs — a SimConfig spanning the dimensions the harness
// varies (n, radius, scheme, strategy, thread count, boundary policy, link
// and drain models, key quantum) plus a FaultPlan and the trial seed — and
// is fully determined by (base_seed, index), so every finding is replayable
// from two integers. Corpus files are one pretty-printed JSON object each
// (schema below); parsing is strict in the fault-plan style: unknown keys
// are errors, so a typo in a hand-edited reproducer fails loudly instead of
// silently testing something else.

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/faults.hpp"
#include "sim/lifetime.hpp"

namespace pacds {
class JsonWriter;
}

namespace pacds::fuzz {

/// Bumped when a corpus field changes meaning; every reproducer carries it.
inline constexpr int kCorpusSchemaVersion = 1;
/// The corpus file magic ("format" key); guards against feeding the parser
/// an arbitrary JSON document.
inline constexpr const char* kCorpusFormat = "pacds-fuzz-repro";

/// One fuzz instance. `id` is the generator iteration that produced it
/// (diagnostics only); all seeds stay below 2^53 so the JSON corpus
/// round-trips them exactly through double-typed numbers.
struct FuzzScenario {
  std::uint64_t id = 0;
  std::uint64_t trial_seed = 1;
  /// Tick granularity for the serve-identity oracle: 0 drives the tenant
  /// with one run-everything tick, K > 0 advances it K intervals per
  /// request — the chunking must not change the emitted stream.
  int serve_ticks = 0;
  SimConfig config{};
  FaultPlan faults{};
};

/// Deterministic generator: the scenario is a pure function of
/// (base_seed, index). Engine stays kAuto — the full-vs-incremental
/// comparison is the oracle's job, not the generator's.
[[nodiscard]] FuzzScenario random_scenario(std::uint64_t base_seed,
                                           std::uint64_t index);

/// One-line knob summary for logs and failure details.
[[nodiscard]] std::string describe(const FuzzScenario& scenario);

/// Emits the scenario as one JSON object through a writer positioned to
/// accept a value (the corpus schema; see DESIGN.md §9).
void write_scenario(JsonWriter& json, const FuzzScenario& scenario);

/// Pretty-printed corpus document, newline-terminated.
[[nodiscard]] std::string scenario_to_json(const FuzzScenario& scenario);

/// Strict parse of a corpus document: wrong "format"/"schema", unknown keys
/// and out-of-range values all throw std::runtime_error naming the field.
[[nodiscard]] FuzzScenario parse_scenario(std::string_view text);

/// Reads and parses a corpus file; errors are prefixed with the path.
[[nodiscard]] FuzzScenario load_scenario(const std::string& path);

}  // namespace pacds::fuzz
