#pragma once
// Per-host battery state. Energy levels start at a uniform initial value
// (the paper uses 100) and are drained once per update interval depending on
// gateway status; a host "ceases to function" when its level reaches zero.

#include <cstddef>
#include <optional>
#include <vector>

namespace pacds {

/// Battery bank for n hosts.
class BatteryBank {
 public:
  /// All hosts start at `initial_level` (> 0).
  BatteryBank(std::size_t n, double initial_level);

  [[nodiscard]] std::size_t size() const noexcept { return levels_.size(); }
  [[nodiscard]] double initial_level() const noexcept { return initial_; }

  [[nodiscard]] double level(std::size_t host) const;
  [[nodiscard]] const std::vector<double>& levels() const noexcept {
    return levels_;
  }

  /// True iff the host's level is still above zero.
  [[nodiscard]] bool alive(std::size_t host) const;

  /// Number of hosts with positive energy.
  [[nodiscard]] std::size_t alive_count() const noexcept;

  /// Drains `amount` (>= 0) from one host, clamping at zero. Returns true
  /// if this drain killed the host (crossed from positive to zero).
  bool drain(std::size_t host, double amount);

  /// Lowest level across all hosts (0 if any host is dead).
  [[nodiscard]] double min_level() const noexcept;

  /// First dead host index, if any.
  [[nodiscard]] std::optional<std::size_t> first_dead() const noexcept;

  /// True iff some host has zero energy — the paper's network-death event.
  [[nodiscard]] bool any_dead() const noexcept { return dead_count_ > 0; }

 private:
  std::vector<double> levels_;
  double initial_;
  std::size_t dead_count_ = 0;
};

}  // namespace pacds
