#include "energy/battery.hpp"

#include <algorithm>
#include <stdexcept>

namespace pacds {

BatteryBank::BatteryBank(std::size_t n, double initial_level)
    : levels_(n, initial_level), initial_(initial_level) {
  if (!(initial_level > 0.0)) {
    throw std::invalid_argument("BatteryBank: initial level must be positive");
  }
}

double BatteryBank::level(std::size_t host) const {
  if (host >= levels_.size()) {
    throw std::out_of_range("BatteryBank::level: host out of range");
  }
  return levels_[host];
}

bool BatteryBank::alive(std::size_t host) const { return level(host) > 0.0; }

std::size_t BatteryBank::alive_count() const noexcept {
  return levels_.size() - dead_count_;
}

bool BatteryBank::drain(std::size_t host, double amount) {
  if (host >= levels_.size()) {
    throw std::out_of_range("BatteryBank::drain: host out of range");
  }
  if (amount < 0.0) {
    throw std::invalid_argument("BatteryBank::drain: negative amount");
  }
  auto& lvl = levels_[host];
  if (lvl <= 0.0) return false;  // already dead; nothing to drain
  lvl -= amount;
  if (lvl <= 0.0) {
    lvl = 0.0;
    ++dead_count_;
    return true;
  }
  return false;
}

double BatteryBank::min_level() const noexcept {
  if (levels_.empty()) return 0.0;
  return *std::min_element(levels_.begin(), levels_.end());
}

std::optional<std::size_t> BatteryBank::first_dead() const noexcept {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] <= 0.0) return i;
  }
  return std::nullopt;
}

}  // namespace pacds
