#pragma once
// The paper's three gateway energy-consumption models (Section 4). Per
// update interval a non-gateway host pays a unit d', while each gateway
// pays d = (total bypass traffic) / |G'|, with the total depending on the
// network size N:
//
//   Model 1 (constant):  total = 2            -> d = 2 / |G'|
//   Model 2 (linear):    total = N            -> d = N / |G'|
//   Model 3 (quadratic): total = N(N-1)/2/10  -> d = N(N-1)/(20 |G'|)
//
// Larger dominating sets spread the bypass traffic across more gateways —
// the trade-off that makes the energy-aware rules win on lifetime.

#include <cstdint>
#include <string>

namespace pacds {

/// Gateway drain model selector.
enum class DrainModel : std::uint8_t {
  kConstantTotal,   ///< Model 1: d = base / |G'|
  kLinearTotal,     ///< Model 2: d = N / |G'|
  kQuadraticTotal,  ///< Model 3: d = N(N-1)/2 / (divisor * |G'|)
};

[[nodiscard]] std::string to_string(DrainModel model);

/// Tunable constants of the drain models (paper defaults).
struct DrainParams {
  double nongateway_drain = 1.0;  ///< d' — unit value per the paper
  double constant_base = 2.0;     ///< Model 1 numerator
  double quadratic_divisor = 10.0;  ///< Model 3's "10" in N(N-1)/2/(10 |G'|)
};

/// Per-gateway drain d for one update interval.
///
/// `n_hosts` is the network size N; `cds_size` is |G'| and must be >= 1
/// whenever any gateway exists. If the gateway set is empty (cds_size == 0)
/// there is nobody to charge, and the function returns 0.
[[nodiscard]] double gateway_drain(DrainModel model, std::size_t n_hosts,
                                   std::size_t cds_size,
                                   const DrainParams& params = {});

/// Total bypass traffic the model distributes over the gateway set.
[[nodiscard]] double total_bypass_traffic(DrainModel model,
                                          std::size_t n_hosts,
                                          const DrainParams& params = {});

}  // namespace pacds
