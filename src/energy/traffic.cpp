#include "energy/traffic.hpp"

namespace pacds {

std::string to_string(DrainModel model) {
  switch (model) {
    case DrainModel::kConstantTotal:
      return "d=2/|G'|";
    case DrainModel::kLinearTotal:
      return "d=N/|G'|";
    case DrainModel::kQuadraticTotal:
      return "d=N(N-1)/2/(10|G'|)";
  }
  return "?";
}

double total_bypass_traffic(DrainModel model, std::size_t n_hosts,
                            const DrainParams& params) {
  const auto n = static_cast<double>(n_hosts);
  switch (model) {
    case DrainModel::kConstantTotal:
      return params.constant_base;
    case DrainModel::kLinearTotal:
      return n;
    case DrainModel::kQuadraticTotal:
      return n * (n - 1.0) / 2.0 / params.quadratic_divisor;
  }
  return 0.0;
}

double gateway_drain(DrainModel model, std::size_t n_hosts,
                     std::size_t cds_size, const DrainParams& params) {
  if (cds_size == 0) return 0.0;
  return total_bypass_traffic(model, n_hosts, params) /
         static_cast<double>(cds_size);
}

}  // namespace pacds
