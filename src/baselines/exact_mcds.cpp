#include "baselines/exact_mcds.hpp"

#include <iostream>

#include "core/verify.hpp"

namespace pacds {

namespace {

/// Converts a mask over n <= 64 nodes into a DynBitset.
DynBitset to_bitset(std::uint64_t mask, std::size_t n) {
  DynBitset set(n);
  while (mask != 0) {
    const auto bit = static_cast<std::size_t>(__builtin_ctzll(mask));
    set.set(bit);
    mask &= mask - 1;
  }
  return set;
}

/// Next mask with the same popcount (Gosper's hack); 0 when exhausted
/// within `limit` bits.
std::uint64_t next_same_popcount(std::uint64_t mask, std::uint64_t limit) {
  const std::uint64_t c = mask & (~mask + 1);
  const std::uint64_t r = mask + c;
  if (r >= limit) return 0;
  return (((r ^ mask) >> 2) / c) | r;
}

}  // namespace

std::optional<DynBitset> exact_min_cds(const Graph& g, int max_nodes) {
  const NodeId n = g.num_nodes();
  if (n > max_nodes || n > 62) {
    // Loud, not silent: a dropped optimum column in a gap sweep is a data
    // bug. Same stderr convention as env_size_t in sim/experiment.
    std::cerr << "warning: exact_min_cds skipping n=" << n
              << " (cap max_nodes=" << (max_nodes < 62 ? max_nodes : 62)
              << "); use bb_min_cds for larger graphs\n";
    return std::nullopt;
  }
  const auto nn = static_cast<std::size_t>(n);
  const std::uint64_t limit = n == 0 ? 1 : (std::uint64_t{1} << n);

  // The empty set first (valid iff every component is an exempt clique).
  {
    const DynBitset empty(nn);
    if (check_cds(g, empty).ok()) return empty;
  }
  for (int k = 1; k <= n; ++k) {
    std::uint64_t mask = (std::uint64_t{1} << k) - 1;
    while (mask != 0) {
      const DynBitset candidate = to_bitset(mask, nn);
      if (check_cds(g, candidate).ok()) return candidate;
      mask = next_same_popcount(mask, limit);
    }
  }
  return std::nullopt;  // unreachable: the full set always dominates
}

}  // namespace pacds
