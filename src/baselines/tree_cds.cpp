#include "baselines/tree_cds.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "core/verify.hpp"

namespace pacds {

DynBitset bfs_tree_cds(const Graph& g, bool prune) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DynBitset cds(n);
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();

  std::vector<char> visited(n, 0);
  std::vector<char> has_child(n, 0);
  for (NodeId c = 0; c < ncomp; ++c) {
    NodeId root = -1;
    std::size_t comp_size = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (comp[static_cast<std::size_t>(v)] != c) continue;
      ++comp_size;
      if (root < 0 || g.degree(v) > g.degree(root)) root = v;
    }
    if (comp_size <= 1) continue;
    // BFS tree; a node is internal iff it acquires at least one child.
    visited[static_cast<std::size_t>(root)] = 1;
    std::deque<NodeId> queue{root};
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nxt : g.neighbors(cur)) {
        if (visited[static_cast<std::size_t>(nxt)]) continue;
        visited[static_cast<std::size_t>(nxt)] = 1;
        has_child[static_cast<std::size_t>(cur)] = 1;
        queue.push_back(nxt);
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (comp[static_cast<std::size_t>(v)] == c &&
          has_child[static_cast<std::size_t>(v)]) {
        cds.set(static_cast<std::size_t>(v));
      }
    }
  }

  if (prune) {
    // Try to drop members in ascending degree order (cheap nodes first);
    // every removal is validated so the set stays a CDS.
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) < g.degree(b);
      return a < b;
    });
    bool changed = true;
    while (changed) {
      changed = false;
      for (const NodeId v : order) {
        if (!cds.test(static_cast<std::size_t>(v))) continue;
        if (removal_is_safe(g, cds, v)) {
          cds.reset(static_cast<std::size_t>(v));
          changed = true;
        }
      }
    }
  }
  return cds;
}

}  // namespace pacds
