#pragma once
// Exact minimum connected dominating set by exhaustive bitmask search —
// exponential, intended for n <= ~20. Gives the optimum the heuristics are
// measured against (approximation ratios in bench/ablation_approx and
// bench/ablation_gap; cross-checked in tests/exact_mcds_test and
// tests/bb_mcds_test). For larger graphs use bb_mcds, the branch-and-bound
// solver that reaches n ≈ 60–80 on random geometric instances.

#include <cstdint>
#include <optional>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Smallest set that dominates g and induces a connected subgraph within
/// every component holding at least one member (same component-wise
/// semantics as check_cds, complete components exempt). Returns nullopt if
/// n exceeds `max_nodes` (guard against accidental blow-ups).
///
/// Enumerates subsets in increasing popcount via Gosper's hack, so the
/// first valid subset found is optimal.
[[nodiscard]] std::optional<DynBitset> exact_min_cds(const Graph& g,
                                                     int max_nodes = 20);

}  // namespace pacds
