#include "baselines/bb_mcds.hpp"

#include <algorithm>
#include <iostream>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "core/articulation.hpp"
#include "core/verify.hpp"

namespace pacds {

namespace {

/// Branch-and-bound over one connected, non-complete component. All bitsets
/// are sized to the component; the driver maps members back to the parent
/// graph afterwards. Every dfs level owns a preallocated frame of scratch
/// bitsets (depth == |included|, bounded by the incumbent size), so the hot
/// path performs no heap allocation: same-size DynBitset copy-assignment
/// reuses capacity.
class ComponentSolver {
 public:
  ComponentSolver(const Graph& g, std::uint64_t budget, std::uint64_t& nodes)
      : g_(g),
        n_(static_cast<std::size_t>(g.num_nodes())),
        budget_(budget),
        nodes_(nodes),
        all_(n_),
        best_(n_) {
    all_.set_all();
    closed_.reserve(n_);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      closed_.push_back(g.closed_row(v));
    }
    // Distance-2 balls drive the 2-packing lower bound: two undominated
    // vertices with disjoint balls can never share a dominator.
    ball2_.reserve(n_);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      DynBitset ball = closed_[static_cast<std::size_t>(v)];
      for (const NodeId u : g.neighbors(v)) {
        ball |= closed_[static_cast<std::size_t>(u)];
      }
      ball2_.push_back(std::move(ball));
    }
  }

  /// Best CDS of the component, or nullopt when the node budget ran out.
  std::optional<DynBitset> solve() {
    best_ = pick_incumbent();
    best_size_ = best_.count();

    frames_.resize(best_size_ + 2);
    for (Frame& frame : frames_) frame.init(n_);

    Frame& root = frames_[0];
    root.included.reset_all();
    root.excluded.reset_all();
    root.dominated.reset_all();
    // Every cut vertex belongs to every CDS of a connected non-complete
    // graph: each component of G - v holds a vertex the set must reach, and
    // only v joins them. Forcing them up front shrinks the search tree and
    // often dominates most of the graph for free.
    articulation_points(g_).for_each_set([&](std::size_t v) {
      root.included.set(v);
      root.dominated |= closed_[v];
    });
    aborted_ = false;
    dfs(0);
    if (aborted_) return std::nullopt;
    return best_;
  }

 private:
  struct Frame {
    DynBitset included, excluded, dominated;
    DynBitset undominated, reach, frontier, next, uncoverable, covered_now;
    DynBitset frontier_layer, candidates, scratch, rest;
    std::vector<std::pair<std::size_t, std::size_t>> order;
    std::vector<std::size_t> coverages;

    void init(std::size_t n) {
      for (DynBitset* bits :
           {&included, &excluded, &dominated, &undominated, &reach, &frontier,
            &next, &uncoverable, &covered_now, &frontier_layer, &candidates,
            &scratch, &rest}) {
        *bits = DynBitset(n);
      }
    }
  };

  DynBitset pick_incumbent() const {
    // The full vertex set is always a CDS of a connected graph; each
    // heuristic usually lands within one or two of the optimum, and the
    // local-search polish often closes the rest — the tighter the incumbent,
    // the less of the tree the search has to visit just to find solutions.
    DynBitset best = all_;
    const DynBitset candidates[] = {greedy_mcds(g_), bfs_tree_cds(g_),
                                    mis_cds(g_)};
    for (const DynBitset& candidate : candidates) {
      if (candidate.count() < best.count() && check_cds(g_, candidate).ok()) {
        best = candidate;
      }
    }
    improve_incumbent(best);
    return best;
  }

  /// Local search: drop removable members, then 2-for-1 exchanges (remove
  /// two members, add one non-member) until neither fires.
  void improve_incumbent(DynBitset& best) const {
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t v = best.find_first(); v != best.size();
           v = best.find_next(v)) {
        if (removal_is_safe(g_, best, static_cast<NodeId>(v))) {
          best.reset(v);
          improved = true;
        }
      }
      if (improved) continue;
      for (std::size_t v = best.find_first();
           v != best.size() && !improved; v = best.find_next(v)) {
        for (std::size_t w = best.find_next(v);
             w != best.size() && !improved; w = best.find_next(w)) {
          for (std::size_t x = 0; x < n_ && !improved; ++x) {
            if (best.test(x)) continue;
            DynBitset trial = best;
            trial.reset(v);
            trial.reset(w);
            trial.set(x);
            if (check_cds(g_, trial).ok()) {
              best = trial;
              improved = true;
            }
          }
        }
      }
    }
  }

  /// True iff the members of `set` induce a connected subgraph.
  bool connected_in(const DynBitset& set) const {
    const std::size_t start = set.find_first();
    if (start == set.size()) return true;
    return member_component(set, start) == set;
  }

  /// Component of G[set] containing `start` (a member), as a bitset.
  DynBitset member_component(const DynBitset& set, std::size_t start) const {
    DynBitset reach(n_);
    reach.set(start);
    DynBitset frontier = reach;
    DynBitset next(n_);
    while (frontier.any()) {
      next.reset_all();
      frontier.for_each_set([&](std::size_t v) { next |= closed_[v]; });
      next &= set;
      next.subtract(reach);
      reach |= next;
      frontier = next;
    }
    return reach;
  }

  /// Lower bound on the number of additional members needed to dominate
  /// frame.undominated: max of the best-single-cover bound and a greedy
  /// 2-packing (vertices pairwise farther than two hops need distinct new
  /// dominators). Returns kInfeasible when no candidate can cover at all.
  std::size_t cover_lower_bound(Frame& frame) {
    // Sorted-prefix cover bound: the k best free coverages must sum to at
    // least |U|, so the smallest such k is a lower bound (at least as tight
    // as ceil(|U| / max_cover)).
    frame.coverages.clear();
    for (std::size_t v = 0; v < n_; ++v) {
      if (frame.included.test(v) || frame.excluded.test(v)) continue;
      frame.scratch = closed_[v];
      frame.scratch &= frame.undominated;
      const std::size_t cover = frame.scratch.count();
      if (cover > 0) frame.coverages.push_back(cover);
    }
    if (frame.coverages.empty()) return kInfeasible;
    std::sort(frame.coverages.begin(), frame.coverages.end(),
              std::greater<>());
    const std::size_t need = frame.undominated.count();
    std::size_t bound = 0;
    std::size_t covered = 0;
    while (covered < need && bound < frame.coverages.size()) {
      covered += frame.coverages[bound];
      ++bound;
    }
    if (covered < need) return kInfeasible;

    // Min-conflict greedy 2-packing: always pack the vertex whose ball
    // knocks out the fewest other candidates — noticeably larger packings
    // than first-index order, and every +1 here prunes a whole tree level.
    std::size_t packing = 0;
    frame.rest = frame.undominated;
    while (frame.rest.any()) {
      std::size_t pick = n_;
      std::size_t pick_conflicts = std::numeric_limits<std::size_t>::max();
      frame.rest.for_each_set([&](std::size_t u) {
        frame.scratch = ball2_[u];
        frame.scratch &= frame.rest;
        const std::size_t conflicts = frame.scratch.count();
        if (conflicts < pick_conflicts) {
          pick_conflicts = conflicts;
          pick = u;
        }
      });
      ++packing;
      frame.rest.subtract(ball2_[pick]);
    }
    return std::max(bound, packing);
  }

  void dfs(std::size_t depth) {
    if (aborted_) return;
    if (++nodes_ > budget_) {
      aborted_ = true;
      return;
    }
    Frame& frame = frames_[depth];
    std::size_t size = frame.included.count();
    if (size >= best_size_) return;

    frame.undominated = all_;
    frame.undominated.subtract(frame.dominated);

    // Unit propagation: an undominated vertex with a single surviving
    // candidate forces that candidate — no tree level needed. Repeat until
    // fixpoint (each inclusion can create new singletons).
    for (bool propagated = true; propagated && frame.undominated.any();) {
      propagated = false;
      for (std::size_t u = frame.undominated.find_first();
           u != frame.undominated.size();
           u = frame.undominated.find_next(u)) {
        frame.scratch = closed_[u];
        frame.scratch.subtract(frame.excluded);
        const std::size_t count = frame.scratch.count();
        if (count == 0) return;  // u can no longer be dominated
        if (count == 1) {
          const std::size_t forced = frame.scratch.find_first();
          frame.included.set(forced);
          frame.dominated |= closed_[forced];
          frame.undominated.subtract(closed_[forced]);
          if (++size >= best_size_) return;
          propagated = true;
          break;
        }
      }
    }

    if (frame.undominated.none()) {
      if (connected_in(frame.included)) {
        best_ = frame.included;
        best_size_ = size;  // strictly smaller by the check above
        return;
      }
      branch_on_connectors(depth);
      return;
    }

    // Multi-source BFS from the members through non-excluded vertices. It
    // yields the free frontier N(S)\X (the connected-growth candidate set),
    // and for every undominated vertex the depth at which its first
    // candidate dominator appears: a dominator surfacing at BFS depth d
    // costs d new members (itself plus d-1 path interiors), so the max over
    // those depths lower-bounds the remaining work in a connectivity-aware
    // way the pure cover bound cannot see.
    std::size_t reach_bound = 0;
    frame.frontier_layer.reset_all();
    if (frame.included.any()) {
      frame.reach = frame.included;
      frame.frontier = frame.included;
      frame.uncoverable = frame.undominated;
      std::size_t bfs_depth = 0;
      while (frame.frontier.any() && frame.uncoverable.any()) {
        ++bfs_depth;
        frame.next.reset_all();
        frame.frontier.for_each_set(
            [&](std::size_t v) { frame.next |= closed_[v]; });
        frame.next.subtract(frame.excluded);
        frame.next.subtract(frame.reach);
        if (bfs_depth == 1) frame.frontier_layer = frame.next;
        frame.covered_now.reset_all();
        frame.uncoverable.for_each_set([&](std::size_t u) {
          if (closed_[u].intersects(frame.next)) frame.covered_now.set(u);
        });
        if (frame.covered_now.any()) {
          reach_bound = bfs_depth;
          frame.uncoverable.subtract(frame.covered_now);
        }
        frame.reach |= frame.next;
        frame.frontier = frame.next;
      }
      if (frame.uncoverable.any()) return;  // some vertex can't be dominated
    }

    const std::size_t extra = cover_lower_bound(frame);
    if (extra == kInfeasible) return;
    if (size + std::max(extra, reach_bound) >= best_size_) return;

    // Two complete candidate sets to branch over: the surviving dominators
    // of the tightest undominated vertex (any solution must pick one — the
    // root branching, and the feasibility check below), or the free
    // frontier N(S)\X (any connected strict superset of S enters it).
    std::size_t branch_vertex = n_;
    std::size_t branch_count = std::numeric_limits<std::size_t>::max();
    frame.undominated.for_each_set([&](std::size_t u) {
      frame.scratch = closed_[u];
      frame.scratch.subtract(frame.excluded);
      const std::size_t count = frame.scratch.count();
      if (count < branch_count) {
        branch_count = count;
        branch_vertex = u;
      }
    });
    if (branch_count == 0) return;  // some vertex can no longer be dominated

    frame.candidates = closed_[branch_vertex];
    frame.candidates.subtract(frame.excluded);
    if (frame.included.any()) {
      // Prefer connected growth: restricting to the free frontier keeps S
      // one blob, which is what makes the BFS distance bound sharp.
      frame.candidates = frame.frontier_layer;
    }
    branch_over_candidates(depth);
  }

  /// Include/exclude enumeration of frame.candidates, ordered by fresh
  /// coverage (descending, then ascending id).
  void branch_over_candidates(std::size_t depth) {
    Frame& frame = frames_[depth];
    frame.order.clear();
    frame.candidates.for_each_set([&](std::size_t c) {
      frame.scratch = closed_[c];
      frame.scratch &= frame.undominated;
      frame.order.emplace_back(frame.scratch.count(), c);
    });
    std::sort(frame.order.begin(), frame.order.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    for (const auto& [cover, candidate] : frame.order) {
      if (depth + 1 >= frames_.size()) break;  // incumbent bounds the depth
      Frame& child = frames_[depth + 1];
      child.included = frame.included;
      child.included.set(candidate);
      child.excluded = frame.excluded;
      child.dominated = frame.dominated;
      child.dominated |= closed_[candidate];
      dfs(depth + 1);
      if (aborted_) return;
      frame.excluded.set(candidate);  // later branches manage without it
    }
  }

  /// Dominating but disconnected: any connected superset must leave the
  /// member-component holding the lowest member through one of its free
  /// neighbors, so branching over those neighbors is complete.
  void branch_on_connectors(std::size_t depth) {
    Frame& frame = frames_[depth];
    const std::size_t size = frame.included.count();
    const DynBitset comp =
        member_component(frame.included, frame.included.find_first());
    frame.rest = frame.included;
    frame.rest.subtract(comp);

    // BFS from the component through non-excluded vertices: distance to the
    // nearest other member-component lower-bounds the connectors still
    // needed and doubles as the reachability feasibility check.
    frame.reach = comp;
    frame.frontier = comp;
    std::size_t bfs_depth = 0;
    std::size_t connectors_needed = kInfeasible;
    while (frame.frontier.any()) {
      ++bfs_depth;
      frame.next.reset_all();
      frame.frontier.for_each_set(
          [&](std::size_t v) { frame.next |= closed_[v]; });
      frame.next.subtract(frame.excluded);
      frame.next.subtract(frame.reach);
      if (frame.next.intersects(frame.rest)) {
        connectors_needed = bfs_depth - 1;  // interior of the shortest path
        break;
      }
      frame.reach |= frame.next;
      frame.frontier = frame.next;
    }
    if (connectors_needed == kInfeasible) return;  // split beyond repair
    if (size + std::max<std::size_t>(connectors_needed, 1) >= best_size_) {
      return;
    }

    frame.candidates.reset_all();
    comp.for_each_set(
        [&](std::size_t v) { frame.candidates |= closed_[v]; });
    frame.candidates.subtract(frame.included);
    frame.candidates.subtract(frame.excluded);
    frame.undominated = frame.rest;  // orders connectors by members touched
    branch_over_candidates(depth);
  }

  static constexpr std::size_t kInfeasible =
      std::numeric_limits<std::size_t>::max();

  const Graph& g_;
  std::size_t n_;
  std::uint64_t budget_;
  std::uint64_t& nodes_;
  DynBitset all_;
  std::vector<DynBitset> closed_;
  std::vector<DynBitset> ball2_;
  std::vector<Frame> frames_;
  DynBitset best_;
  std::size_t best_size_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<DynBitset> bb_min_cds(const Graph& g, const BbOptions& options,
                                    BbStats* stats) {
  BbStats local;
  BbStats& st = stats != nullptr ? *stats : local;
  st = BbStats{};

  const auto n = static_cast<std::size_t>(g.num_nodes());
  DynBitset result(n);
  const std::vector<NodeId> component_of = g.components();
  const NodeId num_components = g.num_components();
  for (NodeId comp = 0; comp < num_components; ++comp) {
    DynBitset keep(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (component_of[static_cast<std::size_t>(v)] == comp) {
        keep.set(static_cast<std::size_t>(v));
      }
    }
    std::vector<NodeId> mapping;
    const Graph sub = g.induced(keep, &mapping);
    if (sub.is_complete()) continue;  // exempt, like check_cds / exact_min_cds
    ComponentSolver solver(sub, options.node_budget, st.nodes);
    const std::optional<DynBitset> best = solver.solve();
    if (!best.has_value()) {
      std::cerr << "warning: bb_min_cds gave up on n=" << g.num_nodes()
                << " (node budget " << options.node_budget
                << " exhausted after " << st.nodes
                << " nodes); optimum unproven\n";
      return std::nullopt;
    }
    best->for_each_set([&](std::size_t i) {
      result.set(static_cast<std::size_t>(mapping[i]));
    });
  }
  st.proven = true;
  return result;
}

}  // namespace pacds
