#include "baselines/mis_cds.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

namespace pacds {

DynBitset greedy_mis(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DynBitset mis(n);
  DynBitset blocked(n);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  for (const NodeId v : order) {
    const auto vi = static_cast<std::size_t>(v);
    if (blocked.test(vi)) continue;
    mis.set(vi);
    blocked.set(vi);
    for (const NodeId u : g.neighbors(v)) {
      blocked.set(static_cast<std::size_t>(u));
    }
  }
  return mis;
}

namespace {

/// Labels each node with the id of the S-cluster it belongs to (nodes of S
/// connected through S), or -1 if not in S.
std::vector<NodeId> s_clusters(const Graph& g, const DynBitset& s) {
  std::vector<NodeId> cluster(static_cast<std::size_t>(g.num_nodes()), -1);
  NodeId next = 0;
  std::deque<NodeId> queue;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (!s.test(vi) || cluster[vi] >= 0) continue;
    cluster[vi] = next;
    queue.push_back(v);
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nxt : g.neighbors(cur)) {
        const auto ni = static_cast<std::size_t>(nxt);
        if (s.test(ni) && cluster[ni] < 0) {
          cluster[ni] = next;
          queue.push_back(nxt);
        }
      }
    }
    ++next;
  }
  return cluster;
}

/// Finds a shortest path (over the whole graph) from cluster 0 of S to any
/// other cluster and returns its vertex sequence; empty if S already has at
/// most one cluster inside this component. `in_comp` restricts the search.
std::vector<NodeId> connector_path(const Graph& g, const DynBitset& s,
                                   const DynBitset& in_comp) {
  const auto cluster = s_clusters(g, s);
  // Pick the lowest cluster id present in this component as the source side.
  NodeId src_cluster = -1;
  in_comp.for_each_set([&](std::size_t i) {
    if (s.test(i) && (src_cluster < 0 || cluster[i] < src_cluster)) {
      src_cluster = cluster[i];
    }
  });
  if (src_cluster < 0) return {};
  // Multi-source BFS from all nodes of src_cluster; stop at the first node
  // of S in a different cluster.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<NodeId> parent(n, -1);
  std::vector<char> seen(n, 0);
  std::deque<NodeId> queue;
  in_comp.for_each_set([&](std::size_t i) {
    if (s.test(i) && cluster[i] == src_cluster) {
      seen[i] = 1;
      queue.push_back(static_cast<NodeId>(i));
    }
  });
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nxt : g.neighbors(cur)) {
      const auto ni = static_cast<std::size_t>(nxt);
      if (seen[ni] || !in_comp.test(ni)) continue;
      seen[ni] = 1;
      parent[ni] = cur;
      if (s.test(ni) && cluster[ni] != src_cluster) {
        std::vector<NodeId> path{nxt};
        for (NodeId p = cur; p != -1; p = parent[static_cast<std::size_t>(p)]) {
          path.push_back(p);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(nxt);
    }
  }
  return {};
}

}  // namespace

DynBitset lowest_id_clusterheads(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DynBitset heads(n);
  DynBitset covered(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (covered.test(vi)) continue;
    heads.set(vi);
    covered.set(vi);
    for (const NodeId u : g.neighbors(v)) {
      covered.set(static_cast<std::size_t>(u));
    }
  }
  return heads;
}

DynBitset connect_dominating_seed(const Graph& g, DynBitset cds) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  // Singletons would be their own member with nobody to dominate; drop
  // them so the convention matches the other baselines.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 0) cds.reset(static_cast<std::size_t>(v));
  }
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  for (NodeId c = 0; c < ncomp; ++c) {
    DynBitset in_comp(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (comp[static_cast<std::size_t>(v)] == c) {
        in_comp.set(static_cast<std::size_t>(v));
      }
    }
    // Stitch clusters together until one remains; each round adds the
    // interior of a shortest connector path, which strictly reduces the
    // cluster count, so this terminates.
    while (true) {
      const auto path = connector_path(g, cds, in_comp);
      if (path.empty()) break;
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        cds.set(static_cast<std::size_t>(path[i]));
      }
    }
  }
  return cds;
}

DynBitset mis_cds(const Graph& g) {
  return connect_dominating_seed(g, greedy_mis(g));
}

DynBitset cluster_cds(const Graph& g) {
  return connect_dominating_seed(g, lowest_id_clusterheads(g));
}

}  // namespace pacds
