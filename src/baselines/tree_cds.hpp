#pragma once
// Spanning-tree CDS baseline: the internal (non-leaf) vertices of any
// spanning tree form a connected dominating set. We root a BFS tree at each
// component's max-degree node and optionally prune redundant internal nodes
// greedily (highest-degree-last) while the set stays a valid CDS.

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Internal nodes of a max-degree-rooted BFS spanning tree, per component.
/// With `prune`, nodes are then removed greedily (ascending degree) whenever
/// removal keeps the set dominating and connected.
[[nodiscard]] DynBitset bfs_tree_cds(const Graph& g, bool prune = true);

}  // namespace pacds
