#include "baselines/cds22.hpp"

#include <deque>
#include <vector>

#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "core/articulation.hpp"

namespace pacds {

namespace {

/// Adds non-members until every non-member with degree >= 2 has two member
/// neighbors, greedily picking the vertex adjacent to the most deficient
/// ones (tie: lowest id). Degree-1 vertices are skipped — they can never be
/// 2-dominated, and pulling them into the backbone would wreck
/// biconnectivity; the final check reports such components as not full_22.
void augment_two_domination(const Graph& g, DynBitset& d) {
  const NodeId n = g.num_nodes();
  for (NodeId guard = 0; guard <= n; ++guard) {
    std::vector<int> gain(static_cast<std::size_t>(n), 0);
    bool any_deficient = false;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (d.test(vi) || g.degree(v) < 2) continue;
      int member_neighbors = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (d.test(static_cast<std::size_t>(u))) ++member_neighbors;
      }
      if (member_neighbors >= 2) continue;
      any_deficient = true;
      for (const NodeId u : g.neighbors(v)) {
        if (!d.test(static_cast<std::size_t>(u))) {
          ++gain[static_cast<std::size_t>(u)];
        }
      }
    }
    if (!any_deficient) return;
    NodeId pick = -1;
    int best_gain = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (gain[static_cast<std::size_t>(u)] > best_gain) {
        best_gain = gain[static_cast<std::size_t>(u)];
        pick = u;
      }
    }
    if (pick < 0) return;  // every deficient vertex is out of candidates
    d.set(static_cast<std::size_t>(pick));
  }
}

/// While the backbone-induced subgraph has a cut vertex c, adds the interior
/// of a shortest path in g that reconnects two of the parts of G[D] - c
/// while avoiding c. The interior is all non-members (any member reached is
/// itself a reconnection target), so 2-domination is preserved. Gives up
/// when no such path exists — then c is a cut vertex of g itself and the
/// component has no (2,2)-CDS at all.
void augment_biconnectivity(const Graph& g, DynBitset& d) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  for (NodeId guard = 0; guard <= g.num_nodes(); ++guard) {
    if (d.count() <= 2) return;  // an edge (or less) is trivially biconnected
    std::vector<NodeId> mapping;
    const Graph bd = g.induced(d, &mapping);
    if (!bd.is_connected()) return;  // restitch failed upstream; give up
    const DynBitset cuts = articulation_points(bd);
    if (cuts.none()) return;
    const auto cut_local = static_cast<NodeId>(cuts.find_first());
    const auto cut = static_cast<std::size_t>(
        mapping[static_cast<std::size_t>(cut_local)]);

    // One part of G[D] - cut, in original ids.
    DynBitset part(n);
    {
      const NodeId start = cut_local == 0 ? 1 : 0;
      std::vector<char> seen(static_cast<std::size_t>(bd.num_nodes()), 0);
      seen[static_cast<std::size_t>(cut_local)] = 1;
      seen[static_cast<std::size_t>(start)] = 1;
      part.set(static_cast<std::size_t>(mapping[static_cast<std::size_t>(start)]));
      std::deque<NodeId> queue{start};
      while (!queue.empty()) {
        const NodeId cur = queue.front();
        queue.pop_front();
        for (const NodeId nxt : bd.neighbors(cur)) {
          if (seen[static_cast<std::size_t>(nxt)] != 0) continue;
          seen[static_cast<std::size_t>(nxt)] = 1;
          part.set(static_cast<std::size_t>(mapping[static_cast<std::size_t>(nxt)]));
          queue.push_back(nxt);
        }
      }
    }

    // Multi-source BFS in g from `part`, avoiding `cut`, through
    // non-members, until any member outside `part` is reached.
    constexpr NodeId kUnvisited = -2;
    constexpr NodeId kSource = -1;
    constexpr NodeId kBanned = -3;
    std::vector<NodeId> parent(n, kUnvisited);
    std::deque<NodeId> queue;
    part.for_each_set([&](std::size_t i) {
      parent[i] = kSource;
      queue.push_back(static_cast<NodeId>(i));
    });
    parent[cut] = kBanned;
    NodeId hit = -1;
    while (!queue.empty() && hit < 0) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nxt : g.neighbors(cur)) {
        const auto ni = static_cast<std::size_t>(nxt);
        if (parent[ni] != kUnvisited) continue;
        parent[ni] = cur;
        if (d.test(ni)) {
          hit = nxt;
          break;
        }
        queue.push_back(nxt);
      }
    }
    if (hit < 0) return;  // g itself hinges on `cut`: no (2,2) exists
    // Add the interior of the path (everything between `hit` and a source).
    for (NodeId v = parent[static_cast<std::size_t>(hit)]; v >= 0;
         v = parent[static_cast<std::size_t>(v)]) {
      d.set(static_cast<std::size_t>(v));
    }
  }
}

}  // namespace

Cds22Check check_cds22(const Graph& g, const DynBitset& set) {
  Cds22Check result;
  const NodeId n = g.num_nodes();
  if (set.size() != static_cast<std::size_t>(n)) {
    result.two_dominating = false;
    result.message = "backbone set size does not match graph";
    return result;
  }
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(ncomp));
  for (NodeId v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  for (const auto& nodes : members) {
    std::size_t marked_count = 0;
    for (const NodeId v : nodes) {
      if (set.test(static_cast<std::size_t>(v))) ++marked_count;
    }
    if (marked_count == 0) {
      bool complete = true;
      for (const NodeId v : nodes) {
        if (static_cast<std::size_t>(g.degree(v)) != nodes.size() - 1) {
          complete = false;
          break;
        }
      }
      if (!complete) {
        result.two_dominating = false;
        result.message = "component containing node " +
                         std::to_string(nodes.front()) +
                         " has no backbone and is not an exempt clique";
        return result;
      }
      continue;
    }
    for (const NodeId v : nodes) {
      if (set.test(static_cast<std::size_t>(v))) continue;
      int member_neighbors = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (set.test(static_cast<std::size_t>(u))) ++member_neighbors;
      }
      if (member_neighbors < 2) {
        result.two_dominating = false;
        result.message = "node " + std::to_string(v) + " has " +
                         std::to_string(member_neighbors) +
                         " backbone neighbors (2-domination needs 2)";
        return result;
      }
    }
    DynBitset keep(static_cast<std::size_t>(n));
    for (const NodeId v : nodes) {
      if (set.test(static_cast<std::size_t>(v))) {
        keep.set(static_cast<std::size_t>(v));
      }
    }
    const Graph backbone = g.induced(keep, nullptr);
    if (!is_biconnected(backbone)) {
      result.biconnected = false;
      result.message =
          "backbone of component containing node " +
          std::to_string(nodes.front()) +
          (backbone.is_connected()
               ? " has an articulation point"
               : " does not induce a connected subgraph");
      return result;
    }
  }
  return result;
}

Cds22Result greedy_cds22(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  Cds22Result out{DynBitset(n), false};
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  for (NodeId c = 0; c < ncomp; ++c) {
    DynBitset keep(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (comp[static_cast<std::size_t>(v)] == c) {
        keep.set(static_cast<std::size_t>(v));
      }
    }
    std::vector<NodeId> mapping;
    const Graph sub = g.induced(keep, &mapping);
    if (sub.is_complete()) continue;  // exempt, as in check_cds
    DynBitset d = greedy_mcds(sub);
    augment_two_domination(sub, d);
    d = connect_dominating_seed(sub, d);
    augment_biconnectivity(sub, d);
    d.for_each_set([&](std::size_t i) {
      out.backbone.set(static_cast<std::size_t>(mapping[i]));
    });
  }
  out.full_22 = check_cds22(g, out.backbone).ok();
  return out;
}

}  // namespace pacds
