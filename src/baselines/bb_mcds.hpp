#pragma once
// Exact minimum connected dominating set by branch and bound — the solver
// that scales past exact_mcds' Gosper-hack bitmask cap (n <= 20) to random
// geometric instances at n ≈ 60–80 within seconds. Same component-wise
// semantics as check_cds / exact_min_cds: complete components are exempt
// and contribute nothing; every other component gets a minimum set whose
// members dominate it and induce a connected subgraph.
//
// Search shape (per non-complete component, DESIGN.md §13):
//   - every articulation point is force-included up front (any CDS of a
//     connected non-complete graph contains every cut vertex);
//   - at the root (S empty) branch on the surviving dominators of the
//     undominated vertex with the fewest; afterwards always on the free
//     frontier N(S)\X — any connected strict superset of S enters it, so
//     the enumeration stays complete while S grows as one blob
//     (include-candidate / exclude-previous, ordered by fresh coverage);
//   - once dominating but disconnected, branch on the free neighbors of the
//     component of G[S] holding the lowest member (any connected superset
//     must leave that component through one of them);
//   - prune with |S| + max(ceil(|U| / best cover), greedy 2-packing of U)
//     against the incumbent (initially the best of greedy / BFS-tree / MIS
//     heuristics), plus BFS connector-distance and reachability checks.

#include <cstdint>
#include <optional>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

struct BbOptions {
  /// Search-tree node budget shared across components; exhausting it
  /// abandons the optimality proof and returns nullopt (with a stderr
  /// diagnostic, so a gap sweep can't silently drop the optimum column).
  std::uint64_t node_budget = 50'000'000;
};

struct BbStats {
  std::uint64_t nodes = 0;  ///< search-tree nodes expanded
  bool proven = false;      ///< true iff the returned set is provably optimal
};

/// Smallest set passing check_cds(g, set). Returns nullopt only when the
/// node budget runs out before the proof completes.
[[nodiscard]] std::optional<DynBitset> bb_min_cds(const Graph& g,
                                                  const BbOptions& options = {},
                                                  BbStats* stats = nullptr);

}  // namespace pacds
