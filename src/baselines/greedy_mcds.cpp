#include "baselines/greedy_mcds.hpp"

#include <vector>

namespace pacds {

namespace {

enum class Color : char { kWhite, kGray, kBlack };

/// Number of white neighbors of v.
int white_yield(const Graph& g, const std::vector<Color>& color, NodeId v) {
  int yield = 0;
  for (const NodeId u : g.neighbors(v)) {
    if (color[static_cast<std::size_t>(u)] == Color::kWhite) ++yield;
  }
  return yield;
}

void blacken(const Graph& g, std::vector<Color>& color, NodeId v) {
  color[static_cast<std::size_t>(v)] = Color::kBlack;
  for (const NodeId u : g.neighbors(v)) {
    auto& cu = color[static_cast<std::size_t>(u)];
    if (cu == Color::kWhite) cu = Color::kGray;
  }
}

}  // namespace

DynBitset greedy_mcds(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DynBitset cds(n);
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  for (NodeId c = 0; c < ncomp; ++c) {
    // Collect the component and find its max-degree seed.
    std::vector<NodeId> nodes;
    NodeId seed = -1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (comp[static_cast<std::size_t>(v)] != c) continue;
      nodes.push_back(v);
      if (seed < 0 || g.degree(v) > g.degree(seed)) seed = v;
    }
    if (nodes.size() <= 1) continue;  // singleton: nothing to dominate

    std::vector<Color> color(n, Color::kWhite);
    blacken(g, color, seed);
    cds.set(static_cast<std::size_t>(seed));
    std::size_t white_left = 0;
    for (const NodeId v : nodes) {
      if (color[static_cast<std::size_t>(v)] == Color::kWhite) ++white_left;
    }

    while (white_left > 0) {
      // Pick the gray node with the largest white yield (ties -> smaller id).
      NodeId best = -1;
      int best_yield = -1;
      for (const NodeId v : nodes) {
        if (color[static_cast<std::size_t>(v)] != Color::kGray) continue;
        const int yield = white_yield(g, color, v);
        if (yield > best_yield) {
          best_yield = yield;
          best = v;
        }
      }
      if (best < 0 || best_yield <= 0) {
        // Cannot happen in a connected component with white nodes left, but
        // guard against infinite loops on malformed input.
        break;
      }
      blacken(g, color, best);
      cds.set(static_cast<std::size_t>(best));
      white_left = 0;
      for (const NodeId v : nodes) {
        if (color[static_cast<std::size_t>(v)] == Color::kWhite) ++white_left;
      }
    }
  }
  return cds;
}

}  // namespace pacds
