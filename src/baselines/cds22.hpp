#pragma once
// Greedy minimum (2,2)-connected dominating set, after the algorithm family
// in arXiv:1705.09643: a backbone D that is biconnected (G[D] has no
// articulation point) and 2-dominating (every non-member has at least two
// neighbors in D). Such a backbone survives the crash of ANY single member
// as a plain connected dominating set — no repair round needed — which is
// what the fault loop's cds22 backbone mode exploits (DESIGN.md §13).
//
// Pipeline per non-complete component: greedy CDS seed → 2-domination
// augmentation (add the non-member covering the most deficient vertices) →
// connector restitch → biconnectivity augmentation (while G[D] has a cut
// vertex c, add the interior of a shortest c-avoiding path between two of
// the split parts). A (2,2) set only exists when the component itself is
// 2-connected; when it is not (cut vertices, degree-1 hosts), the greedy
// still returns a valid plain CDS and reports full_22 = false.

#include <string>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Outcome of a (2,2)-connected dominating set check.
struct Cds22Check {
  bool two_dominating = true;  ///< every non-member has >= 2 member neighbors
  bool biconnected = true;     ///< members connected, no articulation point
  std::string message;         ///< first violation, for test diagnostics

  [[nodiscard]] bool ok() const { return two_dominating && biconnected; }
};

/// Checks the (2,2) invariants component-wise, mirroring check_cds:
/// components with no member pass only when complete (or singletons);
/// within every other component each non-member needs two distinct member
/// neighbors and the members must induce a connected subgraph with no
/// articulation point (two members joined by an edge count as biconnected).
[[nodiscard]] Cds22Check check_cds22(const Graph& g, const DynBitset& set);

struct Cds22Result {
  DynBitset backbone;
  /// True iff check_cds22 passes — i.e. every non-complete component really
  /// got a biconnected, 2-dominating backbone. False means the graph lacks
  /// the connectivity for one (the backbone is still a valid plain CDS).
  bool full_22 = false;
};

/// Greedy (2,2)-connected dominating set per component (complete components
/// exempt, as in check_cds). The backbone always passes check_cds.
[[nodiscard]] Cds22Result greedy_cds22(const Graph& g);

}  // namespace pacds
