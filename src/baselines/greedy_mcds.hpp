#pragma once
// Centralized greedy minimum-CDS approximation (Guha & Khuller, Algorithm I):
// grow a black (dominator) tree from a max-degree seed, always blackening the
// gray node that covers the most still-white nodes. Serves as the
// quality-of-size yardstick the distributed rules are compared against
// (bench/baseline_comparison) — it is not distributed and not power-aware.

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Returns a connected dominating set per connected component of `g`
/// (singleton components contribute no dominator; a complete component
/// contributes its seed node).
[[nodiscard]] DynBitset greedy_mcds(const Graph& g);

}  // namespace pacds
