#pragma once
// MIS-based CDS baseline: a maximal independent set dominates the graph;
// connecting its members with shortest connector paths yields a CDS. This is
// the family behind Das-Bhargavan/spine-style backbones and the classic
// UDG approximation schemes.

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Greedy maximal independent set (descending degree, then ascending id).
[[nodiscard]] DynBitset greedy_mis(const Graph& g);

/// Lowest-ID clusterheads (Lin-Gerla style clustering): greedy MIS taken in
/// ascending id order — every host joins the lowest-id head that reaches
/// it. The cluster-based-routing baseline from the paper's introduction.
[[nodiscard]] DynBitset lowest_id_clusterheads(const Graph& g);

/// Stitches any dominating seed set into a CDS per component by repeatedly
/// adding the interior vertices of shortest connector paths between the
/// seed's clusters. Isolated nodes are dropped from the seed.
[[nodiscard]] DynBitset connect_dominating_seed(const Graph& g,
                                                DynBitset seed);

/// CDS per component: greedy MIS plus connectors. Singleton components
/// contribute nothing.
[[nodiscard]] DynBitset mis_cds(const Graph& g);

/// CDS per component: lowest-ID clusterheads plus connector gateways.
[[nodiscard]] DynBitset cluster_cds(const Graph& g);

}  // namespace pacds
