// Entry point of the pacds command-line tool.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> tokens(argv + 1, argv + argc);
  return pacds::cli::run(tokens, std::cout, std::cerr);
}
