#pragma once
// Tiny dependency-free command-line parser for the pacds CLI: long options
// with values (--seed 42 or --seed=42), boolean flags (--dot), positional
// arguments, typed accessors with defaults, and generated usage text.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pacds {

/// Declarative option set + parser. Unknown options are errors; every
/// option must be declared before parse().
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a boolean flag (present/absent).
  void add_flag(const std::string& name, const std::string& help);

  /// Declares a value option with a default (shown in usage).
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses tokens (argv without the program name). Returns false and sets
  /// error() on unknown options, missing values, or bad syntax.
  bool parse(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string option(const std::string& name) const;
  [[nodiscard]] std::optional<std::int64_t> option_int(
      const std::string& name) const;
  [[nodiscard]] std::optional<double> option_double(
      const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Spec>> specs_;  // declaration order
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positionals_;
  std::string error_;

  [[nodiscard]] const Spec* find(const std::string& name) const;
};

}  // namespace pacds
