#pragma once
// The pacds command-line tool's subcommands, exposed as functions over an
// explicit output stream so tests can drive them without a process.
//
//   pacds cds    — compute a gateway set for a graph (file or random)
//   pacds info   — structural stats of a graph (components, cuts, ...)
//   pacds route  — route a packet through the backbone
//   pacds sim    — run the paper's lifetime simulation
//   pacds sweep  — host-count x scheme sweep (the figure harness)
//   pacds gap    — approximation ratios vs the exact minimum CDS
//   pacds faults — inspect a fault plan's resolved schedule
//   pacds fuzz   — differential fuzzing against the invariant oracles
//   pacds serve  — resident multi-tenant server over JSONL requests
//
// Each command returns a process exit code (0 = success).

#include <iosfwd>
#include <string>
#include <vector>

namespace pacds::cli {

/// Dispatches to a subcommand; tokens[0] is the subcommand name.
int run(const std::vector<std::string>& tokens, std::ostream& out,
        std::ostream& err);

int cmd_cds(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err);
int cmd_info(const std::vector<std::string>& tokens, std::ostream& out,
             std::ostream& err);
int cmd_route(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err);
int cmd_sim(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err);
int cmd_sweep(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err);
int cmd_gap(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err);
int cmd_faults(const std::vector<std::string>& tokens, std::ostream& out,
               std::ostream& err);
int cmd_fuzz(const std::vector<std::string>& tokens, std::ostream& out,
             std::ostream& err);
int cmd_serve(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err);

/// Top-level usage text.
[[nodiscard]] std::string main_usage();

}  // namespace pacds::cli
