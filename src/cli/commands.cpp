#include "cli/commands.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>

#include "core/workspace.hpp"

#include "cli/args.hpp"
#include "core/articulation.hpp"
#include "core/cds.hpp"
#include "core/metrics.hpp"
#include "core/rule_k.hpp"
#include "core/verify.hpp"
#include "fuzz/fuzzer.hpp"
#include "io/dot.hpp"
#include "io/edgelist.hpp"
#include "io/json.hpp"
#include "io/scenario.hpp"
#include "io/table.hpp"
#include "net/rng.hpp"
#include "net/topology.hpp"
#include "io/csv.hpp"
#include "io/parse_num.hpp"
#include "obs/jsonl.hpp"
#include "serve/server.hpp"
#include "routing/routing.hpp"
#include "baselines/bb_mcds.hpp"
#include "baselines/cds22.hpp"
#include "baselines/greedy_mcds.hpp"
#include "baselines/mis_cds.hpp"
#include "baselines/tree_cds.hpp"
#include "sim/engine.hpp"
#include "sim/tiled_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics_io.hpp"
#include "sim/montecarlo.hpp"

namespace pacds::cli {

namespace {

/// Graph source options shared by several subcommands.
void add_graph_options(ArgParser& parser) {
  parser.add_option("input", "edge-list file ('n m' header, 'u v' lines)", "");
  parser.add_option("scenario", "scenario file (radius / hosts / 'x y "
                                "energy' lines)", "");
  parser.add_option("random", "generate a random connected unit-disk "
                              "network with this many hosts", "30");
  parser.add_option("seed", "RNG seed for generation", "2001");
  parser.add_option("radius", "transmission radius for --random", "25");
}

struct LoadedGraph {
  Graph graph;
  std::vector<Vec2> positions;    // empty for edge-list input
  std::vector<double> energies;   // empty unless a scenario provided them
  double radius = kPaperRadius;
};

std::optional<LoadedGraph> load_graph(const ArgParser& parser,
                                      std::ostream& err) {
  const std::string input = parser.option("input");
  if (!input.empty()) {
    std::ifstream file(input);
    if (!file) {
      err << "error: cannot open " << input << "\n";
      return std::nullopt;
    }
    try {
      return LoadedGraph{read_edgelist(file), {}, {}, kPaperRadius};
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  const std::string scenario_path = parser.option("scenario");
  if (!scenario_path.empty()) {
    try {
      Scenario scenario = load_scenario_file(scenario_path);
      return LoadedGraph{scenario.graph(), std::move(scenario.positions),
                         std::move(scenario.energies), scenario.radius};
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  const auto n = parser.option_int("random");
  const auto seed = parser.option_int("seed");
  const auto radius = parser.option_double("radius");
  if (!n || *n < 1 || !seed || !radius || *radius < 0.0) {
    err << "error: bad --random/--seed/--radius values\n";
    return std::nullopt;
  }
  Xoshiro256 rng(static_cast<std::uint64_t>(*seed));
  if (auto placed = random_connected_placement(
          static_cast<int>(*n), Field::paper_field(), *radius, rng, 2000)) {
    return LoadedGraph{std::move(placed->graph), std::move(placed->positions),
                       {}, *radius};
  }
  err << "error: no connected placement found for n=" << *n
      << " r=" << *radius << " (try a larger radius)\n";
  return std::nullopt;
}

/// Energy levels for the EL schemes: the scenario's when provided, random
/// otherwise.
std::vector<double> energies_for(const LoadedGraph& loaded,
                                 std::uint64_t seed) {
  if (!loaded.energies.empty()) return loaded.energies;
  Xoshiro256 rng(seed ^ 0xe1e1e1);
  std::vector<double> energy;
  for (NodeId v = 0; v < loaded.graph.num_nodes(); ++v) {
    energy.push_back(static_cast<double>(rng.uniform_int(1, 100)));
  }
  return energy;
}

std::optional<RuleSet> parse_scheme(const std::string& name) {
  if (name == "NR") return RuleSet::kNR;
  if (name == "ID") return RuleSet::kID;
  if (name == "ND") return RuleSet::kND;
  if (name == "EL1") return RuleSet::kEL1;
  if (name == "EL2") return RuleSet::kEL2;
  if (name == "SEL") return RuleSet::kSEL;
  return std::nullopt;
}

std::optional<Strategy> parse_strategy(const std::string& name) {
  if (name == "simultaneous") return Strategy::kSimultaneous;
  if (name == "sequential") return Strategy::kSequential;
  if (name == "verified") return Strategy::kVerified;
  return std::nullopt;
}

std::optional<KeyKind> parse_key(const std::string& name) {
  if (name == "ID") return KeyKind::kId;
  if (name == "ND") return KeyKind::kDegreeId;
  if (name == "EL1") return KeyKind::kEnergyId;
  if (name == "EL2") return KeyKind::kEnergyDegreeId;
  if (name == "SEL") return KeyKind::kStabilityEnergyId;
  return std::nullopt;
}

std::optional<MobilityKind> parse_mobility_kind(const std::string& name) {
  if (name == "paper-jump") return MobilityKind::kPaperJump;
  if (name == "random-walk") return MobilityKind::kRandomWalk;
  if (name == "random-waypoint") return MobilityKind::kRandomWaypoint;
  if (name == "gauss-markov") return MobilityKind::kGaussMarkov;
  if (name == "static") return MobilityKind::kStatic;
  return std::nullopt;
}

std::optional<RadioKind> parse_radio_kind(const std::string& name) {
  if (name == "unit-disk") return RadioKind::kUnitDisk;
  if (name == "shadowing") return RadioKind::kShadowing;
  if (name == "probabilistic") return RadioKind::kProbabilistic;
  return std::nullopt;
}

/// Parses --scheme for the simulation commands: "all" or one scheme name.
/// "all" stays the paper's five schemes; SEL is opt-in by name so the
/// default sweeps keep reproducing the paper's tables unchanged.
std::optional<std::vector<RuleSet>> parse_scheme_list(const std::string& name,
                                                      std::ostream& err) {
  std::vector<RuleSet> schemes;
  if (name == "all") {
    schemes.assign(std::begin(kAllRuleSets), std::end(kAllRuleSets));
    return schemes;
  }
  if (const auto rs = parse_scheme(name)) {
    schemes.push_back(*rs);
    return schemes;
  }
  err << "error: unknown scheme '" << name << "'\n";
  return std::nullopt;
}

/// Opens --metrics when given; a default-constructed sink stays detached.
/// Returns false when the path cannot be opened for writing.
bool open_metrics(const std::string& path, std::ofstream& file,
                  std::optional<obs::JsonlSink>& sink, std::ostream& err) {
  if (path.empty()) return true;
  file.open(path);
  if (!file) {
    err << "error: cannot write " << path << "\n";
    return false;
  }
  sink.emplace(file);
  return true;
}

}  // namespace

int cmd_cds(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err) {
  ArgParser parser("pacds cds", "compute a connected dominating set");
  add_graph_options(parser);
  parser.add_option("scheme", "NR | ID | ND | EL1 | EL2 | SEL | RULEK", "ID");
  parser.add_option("key", "priority key for --scheme RULEK "
                           "(ID | ND | EL1 | EL2 | SEL)", "ND");
  parser.add_option("strategy", "sequential | simultaneous | verified",
                    "sequential");
  parser.add_flag("dot", "emit Graphviz instead of a summary");
  parser.add_flag("json", "emit a JSON summary instead of text");
  parser.add_option("save-scenario",
                    "write the network (positions + energies) to this file",
                    "");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto loaded = load_graph(parser, err);
  if (!loaded) return 1;
  const Graph& g = loaded->graph;
  const auto seed =
      static_cast<std::uint64_t>(parser.option_int("seed").value_or(2001));
  const auto strategy = parse_strategy(parser.option("strategy"));
  if (!strategy) {
    err << "error: unknown strategy '" << parser.option("strategy") << "'\n";
    return 2;
  }
  const std::vector<double> energy = energies_for(*loaded, seed);

  const std::string save_path = parser.option("save-scenario");
  if (!save_path.empty()) {
    if (loaded->positions.empty()) {
      err << "error: --save-scenario needs a positional network "
             "(--random or --scenario input)\n";
      return 2;
    }
    Scenario scenario;
    scenario.radius = loaded->radius;
    scenario.positions = loaded->positions;
    scenario.energies = energy;
    if (!save_scenario_file(save_path, scenario)) {
      err << "error: cannot write " << save_path << "\n";
      return 1;
    }
    out << "saved scenario to " << save_path << "\n";
  }

  CdsResult result;
  const std::string scheme = parser.option("scheme");
  if (scheme == "RULEK") {
    const auto key = parse_key(parser.option("key"));
    if (!key) {
      err << "error: unknown key '" << parser.option("key") << "'\n";
      return 2;
    }
    result = compute_cds_rule_k(g, *key, energy, *strategy);
  } else {
    const auto rs = parse_scheme(scheme);
    if (!rs) {
      err << "error: unknown scheme '" << scheme << "'\n";
      return 2;
    }
    CdsOptions options;
    options.strategy = *strategy;
    result = compute_cds(g, *rs, energy, options);
  }

  if (parser.flag("dot")) {
    out << to_dot(g, &result.gateways,
                  loaded->positions.empty() ? nullptr : &loaded->positions);
    return 0;
  }
  const CdsCheck check = check_cds(g, result.gateways);
  if (parser.flag("json")) {
    JsonWriter json(out);
    json.begin_object();
    json.key("hosts").value(g.num_nodes());
    json.key("links").value(g.num_edges());
    json.key("scheme").value(scheme);
    json.key("strategy").value(parser.option("strategy"));
    json.key("marked").value(result.marked_count);
    json.key("gateway_count").value(result.gateway_count);
    json.key("valid").value(check.ok());
    json.key("gateways").begin_array();
    result.gateways.for_each_set(
        [&json](std::size_t v) { json.value(v); });
    json.end_array();
    json.end_object();
    out << "\n";
    return check.ok() ? 0 : 1;
  }
  out << "hosts:     " << g.num_nodes() << "\n"
      << "links:     " << g.num_edges() << "\n"
      << "marked:    " << result.marked_count << " (marking process)\n"
      << "gateways:  " << result.gateway_count << " " << scheme << "/"
      << parser.option("strategy") << "\n"
      << "valid CDS: " << (check.ok() ? "yes" : "NO — " + check.message)
      << "\n"
      << "set:       " << result.gateways.to_string() << "\n";
  return check.ok() ? 0 : 1;
}

int cmd_info(const std::vector<std::string>& tokens, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("pacds info", "structural statistics of a network");
  add_graph_options(parser);
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto loaded = load_graph(parser, err);
  if (!loaded) return 1;
  const Graph& g = loaded->graph;

  const DegreeStats degrees = degree_stats(g);
  const DynBitset cuts = articulation_points(g);
  out << "hosts:        " << g.num_nodes() << "\n"
      << "links:        " << g.num_edges() << "\n"
      << "degree:       min " << degrees.min << ", avg "
      << TextTable::fmt(degrees.mean) << ", max " << degrees.max << "\n"
      << "density:      " << TextTable::fmt(edge_density(g), 3) << "\n"
      << "clustering:   " << TextTable::fmt(average_clustering(g), 3) << "\n"
      << "triangles:    " << triangle_count(g) << "\n"
      << "components:   " << g.num_components() << "\n"
      << "connected:    " << (g.is_connected() ? "yes" : "no") << "\n"
      << "complete:     " << (g.is_complete() ? "yes" : "no") << "\n";
  if (const auto diam = g.diameter()) {
    out << "diameter:     " << *diam << "\n";
  }
  out << "cut vertices: " << cuts.count() << " " << cuts.to_string() << "\n"
      << "bridges:      " << bridges(g).size() << "\n"
      << "marked (NR):  " << marking_process(g).count() << "\n";
  return 0;
}

int cmd_route(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err) {
  ArgParser parser("pacds route",
                   "route a packet through the gateway backbone");
  add_graph_options(parser);
  parser.add_option("scheme", "NR | ID | ND | EL1 | EL2 | SEL", "ID");
  parser.add_option("src", "source host id", "0");
  parser.add_option("dst", "destination host id", "1");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto loaded = load_graph(parser, err);
  if (!loaded) return 1;
  const Graph& g = loaded->graph;
  const auto rs = parse_scheme(parser.option("scheme"));
  if (!rs) {
    err << "error: unknown scheme '" << parser.option("scheme") << "'\n";
    return 2;
  }
  const auto src = parser.option_int("src");
  const auto dst = parser.option_int("dst");
  if (!src || !dst || *src < 0 || *dst < 0 || *src >= g.num_nodes() ||
      *dst >= g.num_nodes()) {
    err << "error: --src/--dst out of range [0, " << g.num_nodes() << ")\n";
    return 2;
  }
  const auto seed =
      static_cast<std::uint64_t>(parser.option_int("seed").value_or(2001));
  const CdsResult cds = compute_cds(g, *rs, energies_for(*loaded, seed));
  const DominatingSetRouter router(g, cds.gateways);
  const RouteResult route = router.route(static_cast<NodeId>(*src),
                                         static_cast<NodeId>(*dst));
  out << "gateways (" << cds.gateway_count
      << "): " << cds.gateways.to_string() << "\n";
  if (!route.delivered) {
    out << "route " << *src << " -> " << *dst
        << ": UNDELIVERABLE (" << route.failure << ")\n";
    return 1;
  }
  out << "route " << *src << " -> " << *dst << " (" << route.path.size() - 1
      << " hops):";
  for (const NodeId hop : route.path) out << " " << hop;
  out << "\n";
  return 0;
}

int cmd_sim(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err) {
  ArgParser parser("pacds sim", "run the paper's lifetime simulation");
  parser.add_option("n", "number of hosts", "50");
  parser.add_option("trials", "Monte-Carlo trials", "30");
  parser.add_option("model", "gateway drain model: 1 (d=2/|G'|), "
                             "2 (d=N/|G'|), 3 (d=N(N-1)/2/(10|G'|))", "2");
  parser.add_option("scheme", "NR | ID | ND | EL1 | EL2 | SEL | all "
                              "('all' = the paper's five; SEL is opt-in)",
                    "all");
  parser.add_option("seed", "base RNG seed", "2001");
  parser.add_option("quantum", "energy-key quantization (0 = off)", "1");
  parser.add_option("mobility",
                    "mobility model: paper-jump | random-walk | "
                    "random-waypoint | gauss-markov | static (non-paper-jump "
                    "kinds use MobilityParams defaults; use a config JSON for "
                    "full control)",
                    "paper-jump");
  parser.add_option("depth",
                    "field z extent (0 = the paper's planar world; > 0 lifts "
                    "placement, mobility and link distances into 3-D)",
                    "0");
  parser.add_option("radio",
                    "propagation model gating unit-disk links: unit-disk | "
                    "shadowing | probabilistic (deterministic per-pair "
                    "fading; params from RadioParams defaults)",
                    "unit-disk");
  parser.add_option("fading-seed",
                    "per-pair fading seed for --radio shadowing | "
                    "probabilistic",
                    "1");
  parser.add_option("stability-beta",
                    "SEL churn EWMA memory in [0, 1] (0 = latest interval "
                    "only, 1 = frozen)",
                    "0.5");
  parser.add_option("stability-quantum",
                    "SEL churn bucket width (0 = raw EWMA values)", "1");
  parser.add_option("strategy", "sequential | simultaneous | verified",
                    "sequential");
  parser.add_option("engine",
                    "per-interval engine: auto | full | incremental | tiled",
                    "auto");
  parser.add_option("backbone",
                    "backbone family: scheme (the paper's rules, "
                    "recomputed each interval) | cds22 (greedy "
                    "(2,2)-connected set, kept while it still verifies; "
                    "survives single gateway crashes without repair)",
                    "scheme");
  parser.add_option("tiles",
                    "tile count for --engine tiled (0 = auto: finest grid "
                    "with tile side >= 2*radius); gateways are identical for "
                    "every value",
                    "0");
  parser.add_option("threads",
                    "worker threads for the CDS passes inside each interval "
                    "(1 = serial, 0 = all cores); results are identical for "
                    "every value",
                    "1");
  parser.add_option("metrics",
                    "stream JSONL metrics to this file (one run manifest per "
                    "scheme + one record per interval); '-' streams to "
                    "stdout and moves the summary table to stderr",
                    "");
  parser.add_option("faults",
                    "fault-plan JSON file (see FAULTS.md): runs the "
                    "simulation in degraded mode past the first death",
                    "");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto n = parser.option_int("n");
  const auto trials = parser.option_int("trials");
  const auto model = parser.option_int("model");
  const auto seed = parser.option_int("seed");
  const auto quantum = parser.option_double("quantum");
  const auto threads = parser.option_int("threads");
  const auto tiles = parser.option_int("tiles");
  const auto depth = parser.option_double("depth");
  const auto fading_seed = parser.option_int("fading-seed");
  const auto stability_beta = parser.option_double("stability-beta");
  const auto stability_quantum = parser.option_double("stability-quantum");
  if (!n || *n < 1 || !trials || *trials < 1 || !model || *model < 1 ||
      *model > 3 || !seed || !quantum || !threads || *threads < 0 || !tiles ||
      *tiles < 0 || !depth || *depth < 0.0 || !fading_seed ||
      *fading_seed < 0 || !stability_beta || *stability_beta < 0.0 ||
      *stability_beta > 1.0 || !stability_quantum || *stability_quantum < 0.0) {
    err << "error: bad numeric option\n" << parser.usage();
    return 2;
  }
  const auto strategy = parse_strategy(parser.option("strategy"));
  if (!strategy) {
    err << "error: unknown strategy '" << parser.option("strategy") << "'\n";
    return 2;
  }
  SimConfig config;
  config.n_hosts = static_cast<int>(*n);
  config.drain_model = *model == 1   ? DrainModel::kConstantTotal
                       : *model == 2 ? DrainModel::kLinearTotal
                                     : DrainModel::kQuadraticTotal;
  config.energy_key_quantum = *quantum;
  config.cds_options.strategy = *strategy;
  config.threads = static_cast<int>(*threads);
  config.field_depth = *depth;
  config.stability_beta = *stability_beta;
  config.stability_quantum = *stability_quantum;
  const auto mobility = parse_mobility_kind(parser.option("mobility"));
  if (!mobility) {
    err << "error: unknown mobility '" << parser.option("mobility") << "'\n";
    return 2;
  }
  config.mobility_kind = *mobility;
  const auto radio = parse_radio_kind(parser.option("radio"));
  if (!radio) {
    err << "error: unknown radio '" << parser.option("radio") << "'\n";
    return 2;
  }
  config.radio = *radio;
  config.radio_params.fading_seed =
      static_cast<std::uint64_t>(*fading_seed);
  const std::string engine = parser.option("engine");
  if (engine == "auto") {
    config.engine = SimEngine::kAuto;
  } else if (engine == "full") {
    config.engine = SimEngine::kFullRebuild;
  } else if (engine == "incremental") {
    config.engine = SimEngine::kIncremental;
  } else if (engine == "tiled") {
    config.engine = SimEngine::kTiled;
  } else {
    err << "error: unknown engine '" << engine << "'\n";
    return 2;
  }
  const std::string backbone = parser.option("backbone");
  if (backbone == "scheme") {
    config.backbone = BackboneMode::kScheme;
  } else if (backbone == "cds22") {
    config.backbone = BackboneMode::kCds22;
  } else {
    err << "error: unknown backbone '" << backbone << "'\n";
    return 2;
  }
  config.tiles = static_cast<int>(*tiles);
  if (config.backbone == BackboneMode::kCds22 &&
      (config.engine == SimEngine::kIncremental ||
       config.engine == SimEngine::kTiled)) {
    err << "error: --backbone cds22 needs --engine auto or full\n";
    return 2;
  }
  if (config.engine == SimEngine::kIncremental &&
      !incremental_engine_eligible(config)) {
    err << "error: --engine incremental needs --strategy simultaneous\n";
    return 2;
  }
  if (config.engine == SimEngine::kTiled && !tiled_engine_eligible(config)) {
    err << "error: --engine tiled needs --strategy simultaneous\n";
    return 2;
  }

  const auto schemes = parse_scheme_list(parser.option("scheme"), err);
  if (!schemes) return 2;

  std::optional<FaultPlan> fault_plan;
  const std::string faults_path = parser.option("faults");
  if (!faults_path.empty()) {
    try {
      fault_plan = load_fault_plan(faults_path);
      validate_fault_plan(*fault_plan, config.n_hosts);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 1;
    }
  }

  // --metrics - streams JSONL to stdout; the human tables then move to
  // stderr so the record stream stays machine-parseable.
  const std::string metrics_path = parser.option("metrics");
  const bool metrics_to_stdout = metrics_path == "-";
  std::ofstream metrics_file;
  std::optional<obs::JsonlSink> metrics;
  if (metrics_to_stdout) {
    metrics.emplace(out);
  } else if (!open_metrics(metrics_path, metrics_file, metrics, err)) {
    return 1;
  }
  std::ostream& report = metrics_to_stdout ? err : out;

  report << "lifetime simulation: n=" << *n << ", "
         << to_string(config.drain_model) << ", " << *trials << " trials";
  if (fault_plan) report << ", faults: " << faults_path;
  report << "\n";
  TextTable table(fault_plan
                      ? std::vector<std::string>{"scheme", "run len", "±95%",
                                                 "avg |G'|", "events",
                                                 "repairs", "disconn",
                                                 "min cov"}
                      : std::vector<std::string>{"scheme", "lifetime", "±95%",
                                                 "avg |G'|"});
  table.set_align(0, Align::kLeft);
  for (const RuleSet rs : *schemes) {
    config.rule_set = rs;
    const LifetimeSummary s = run_lifetime_trials(
        config, static_cast<std::size_t>(*trials),
        static_cast<std::uint64_t>(*seed), nullptr,
        metrics ? &*metrics : nullptr, fault_plan ? &*fault_plan : nullptr);
    if (fault_plan) {
      table.add_row({to_string(rs), TextTable::fmt(s.intervals.mean),
                     TextTable::fmt(s.intervals.ci95),
                     TextTable::fmt(s.avg_gateways.mean),
                     std::to_string(s.faults.events),
                     std::to_string(s.faults.repairs),
                     std::to_string(s.faults.disconnected_intervals),
                     TextTable::fmt(s.faults.min_coverage, 3)});
    } else {
      table.add_row({to_string(rs), TextTable::fmt(s.intervals.mean),
                     TextTable::fmt(s.intervals.ci95),
                     TextTable::fmt(s.avg_gateways.mean)});
    }
  }
  table.print(report);
  if (metrics && !metrics_to_stdout) {
    report << "wrote " << metrics->records() << " metrics records to "
           << metrics_path << "\n";
  }
  return 0;
}

/// --sets: single-snapshot set-size study instead of lifetime trials.
/// For each n, samples random unit-disk graphs at the paper's density
/// (50 hosts per 100x100 field, r = 25; the field grows with n) and
/// measures the marked set, the Rule 1+2 set (ID keys, the algorithm
/// Hansen-Schmutz analyze in arXiv:cs/0408068) and the Rule k set
/// (arXiv:cs/0408067). Both papers predict E[|set|] = Theta(n): the ratios
/// printed here should level off at n-independent constants, with the
/// Rule k constant below the Rule 2 constant (EXPERIMENTS.md, "Hansen-
/// Schmutz check").
int run_set_size_study(const std::vector<int>& hosts, std::size_t trials,
                       std::uint64_t base_seed, std::ostream& out) {
  out << "set sizes on random unit-disk snapshots (constant density: 50 "
         "hosts per 100x100, r = 25; ID keys, simultaneous rules)\n";
  TextTable table({"n", "avg deg", "marked/n", "rule2/n", "rulek/n",
                   "rulek/rule2"});
  CdsWorkspace workspace;
  const ExecContext ctx{nullptr, &workspace, nullptr};
  CdsOptions options;
  options.strategy = Strategy::kSimultaneous;
  for (const int n : hosts) {
    double marked = 0.0;
    double rule2 = 0.0;
    double rulek = 0.0;
    double degree = 0.0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const std::uint64_t mix = std::uint64_t{0x9e3779b97f4a7c15} *
                                (static_cast<std::uint64_t>(trial) + 1);
      Xoshiro256 rng(base_seed + mix + static_cast<std::uint64_t>(n));
      const double side = std::sqrt(static_cast<double>(n) / 50.0) * 100.0;
      const Field field(side, side, BoundaryPolicy::kClamp);
      const auto positions = random_placement(n, field, rng);
      const Graph g =
          build_links(positions, kPaperRadius, LinkModel::kUnitDisk);
      const CdsResult r2 = compute_cds(g, RuleSet::kID, {}, options, ctx);
      const CdsResult rk = compute_cds_rule_k(
          g, KeyKind::kId, {}, Strategy::kSimultaneous, CliquePolicy::kNone,
          ctx);
      marked += static_cast<double>(r2.marked_count);
      rule2 += static_cast<double>(r2.gateway_count);
      rulek += static_cast<double>(rk.gateway_count);
      degree += 2.0 * static_cast<double>(g.num_edges()) /
                static_cast<double>(g.num_nodes());
    }
    const double den = static_cast<double>(trials) * n;
    table.add_row({TextTable::fmt(n),
                   TextTable::fmt(degree / static_cast<double>(trials)),
                   TextTable::fmt(marked / den, 4),
                   TextTable::fmt(rule2 / den, 4),
                   TextTable::fmt(rulek / den, 4),
                   TextTable::fmt(rulek / rule2, 4)});
  }
  table.print(out);
  return 0;
}

int cmd_sweep(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err) {
  ArgParser parser("pacds sweep",
                   "sweep host count x scheme (the figure harness)");
  parser.add_option("hosts",
                    "comma-separated host counts, or 'paper' (3..100) / "
                    "'quick' (10,30,50,80) / 'hansen' (1k..100k ladder "
                    "for --sets)",
                    "quick");
  parser.add_option("scheme", "NR | ID | ND | EL1 | EL2 | SEL | all "
                              "('all' = the paper's five; SEL is opt-in)",
                    "all");
  parser.add_option("trials", "Monte-Carlo trials per (n, scheme) point",
                    "10");
  parser.add_option("model", "gateway drain model: 1 (d=2/|G'|), "
                             "2 (d=N/|G'|), 3 (d=N(N-1)/2/(10|G'|))", "2");
  parser.add_option("seed", "base RNG seed", "2001");
  parser.add_option("strategy", "sequential | simultaneous | verified",
                    "sequential");
  parser.add_option("jobs",
                    "worker threads for the Monte-Carlo trial pool "
                    "(1 = serial, 0 = all cores); per-trial interval "
                    "parallelism is forced off under a pool",
                    "1");
  parser.add_option("csv", "write the sweep table as CSV to this file", "");
  parser.add_option("metrics",
                    "stream JSONL metrics to this file (one run manifest per "
                    "(n, scheme) point + one record per interval)",
                    "");
  parser.add_flag("ci", "add ±95% confidence columns to the tables");
  parser.add_flag("sets",
                  "measure CDS set sizes on single snapshots instead of "
                  "lifetimes (the Hansen-Schmutz check; see EXPERIMENTS.md)");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto trials = parser.option_int("trials");
  const auto model = parser.option_int("model");
  const auto seed = parser.option_int("seed");
  const auto jobs = parser.option_int("jobs");
  if (!trials || *trials < 1 || !model || *model < 1 || *model > 3 || !seed ||
      !jobs || *jobs < 0) {
    err << "error: bad numeric option\n" << parser.usage();
    return 2;
  }
  const auto strategy = parse_strategy(parser.option("strategy"));
  if (!strategy) {
    err << "error: unknown strategy '" << parser.option("strategy") << "'\n";
    return 2;
  }
  const auto schemes = parse_scheme_list(parser.option("scheme"), err);
  if (!schemes) return 2;

  SweepConfig sweep;
  const std::string hosts = parser.option("hosts");
  if (hosts == "paper") {
    sweep.host_counts = paper_host_counts();
  } else if (hosts == "quick") {
    sweep.host_counts = quick_host_counts();
  } else if (hosts == "hansen") {
    // Geometric ladder for the --sets asymptotics; the top rung is the
    // n = 1e5 point the Hansen-Schmutz comparison needs.
    sweep.host_counts = {1000, 3162, 10000, 31623, 100000};
  } else if (hosts.empty()) {
    err << "error: --hosts needs at least one host count\n";
    return 2;
  } else {
    // Checked parse: std::stoi accepted partial tokens ("4x" -> 4) and threw
    // on overflow; parse_int_list demands full-token integers in range.
    std::string bad;
    const auto counts = parse_int_list(hosts, 1, 1000000, &bad);
    if (!counts) {
      err << "error: bad --hosts entry '" << bad << "'\n";
      return 2;
    }
    sweep.host_counts.reserve(counts->size());
    for (const std::int64_t n : *counts) {
      sweep.host_counts.push_back(static_cast<int>(n));
    }
  }
  if (parser.flag("sets")) {
    return run_set_size_study(sweep.host_counts,
                              static_cast<std::size_t>(*trials),
                              static_cast<std::uint64_t>(*seed), out);
  }
  sweep.schemes = *schemes;
  sweep.trials = static_cast<std::size_t>(*trials);
  sweep.base_seed = static_cast<std::uint64_t>(*seed);
  sweep.base.drain_model = *model == 1   ? DrainModel::kConstantTotal
                           : *model == 2 ? DrainModel::kLinearTotal
                                         : DrainModel::kQuadraticTotal;
  sweep.base.cds_options.strategy = *strategy;

  std::ofstream metrics_file;
  std::optional<obs::JsonlSink> metrics;
  if (!open_metrics(parser.option("metrics"), metrics_file, metrics, err)) {
    return 1;
  }
  std::optional<ThreadPool> pool;
  if (*jobs != 1) {
    pool.emplace(*jobs == 0 ? 0 : static_cast<std::size_t>(*jobs));
  }

  out << "sweep: " << sweep.host_counts.size() << " host counts x "
      << sweep.schemes.size() << " schemes, "
      << to_string(sweep.base.drain_model) << ", " << sweep.trials
      << " trials each\n";
  const SweepResult result =
      run_sweep(sweep, pool ? &*pool : nullptr, metrics ? &*metrics : nullptr);
  out << "\nlifetime (intervals to first death):\n";
  sweep_table(result, SweepMetric::kLifetime, parser.flag("ci")).print(out);
  out << "\nmean gateway count:\n";
  sweep_table(result, SweepMetric::kGatewayCount, parser.flag("ci"))
      .print(out);

  const std::string csv_path = parser.option("csv");
  if (!csv_path.empty()) {
    if (!write_csv_file(csv_path, sweep_csv_header(result),
                        sweep_csv_rows(result, SweepMetric::kLifetime))) {
      err << "error: cannot write " << csv_path << "\n";
      return 1;
    }
    out << "\nwrote " << csv_path << "\n";
  }
  if (metrics) {
    out << "wrote " << metrics->records() << " metrics records to "
        << parser.option("metrics") << "\n";
  }
  return 0;
}

/// Comma-separated list of positive finite doubles (radius grids).
std::optional<std::vector<double>> parse_double_list(const std::string& text,
                                                     std::string* bad_item) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    const auto value = parse_finite_double(item);
    if (!value || *value <= 0.0) {
      if (bad_item != nullptr) *bad_item = item;
      return std::nullopt;
    }
    values.push_back(*value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

int cmd_gap(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err) {
  ArgParser parser("pacds gap",
                   "approximation ratios of the distributed schemes and the "
                   "centralized heuristics against the branch-and-bound "
                   "exact minimum CDS (see EXPERIMENTS.md, 'Optimality "
                   "gap')");
  parser.add_option("hosts", "comma-separated host counts", "20,40,60");
  parser.add_option("radius", "comma-separated transmission radii", "25");
  parser.add_option("trials", "instances per (n, radius) point", "3");
  parser.add_option("seed", "base RNG seed", "2001");
  parser.add_option("budget",
                    "branch-and-bound node budget per instance (instances "
                    "that exhaust it are reported unproven and excluded "
                    "from the ratios)",
                    "50000000");
  parser.add_option("metrics",
                    "stream JSONL gap records to this file (one gap_manifest "
                    "+ one gap_point per instance); '-' streams to stdout "
                    "and moves the ratio table to stderr",
                    "");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto trials = parser.option_int("trials");
  const auto seed = parser.option_int("seed");
  const auto budget = parser.option_int("budget");
  if (!trials || *trials < 1 || !seed || !budget || *budget < 1) {
    err << "error: bad numeric option\n" << parser.usage();
    return 2;
  }
  std::string bad;
  const auto host_list = parse_int_list(parser.option("hosts"), 2, 2000, &bad);
  if (!host_list) {
    err << "error: bad --hosts entry '" << bad << "'\n";
    return 2;
  }
  const auto radius_list = parse_double_list(parser.option("radius"), &bad);
  if (!radius_list) {
    err << "error: bad --radius entry '" << bad << "'\n";
    return 2;
  }

  const std::string metrics_path = parser.option("metrics");
  const bool metrics_to_stdout = metrics_path == "-";
  std::ofstream metrics_file;
  std::optional<obs::JsonlSink> metrics;
  if (metrics_to_stdout) {
    metrics.emplace(out);
  } else if (!open_metrics(metrics_path, metrics_file, metrics, err)) {
    return 1;
  }
  std::ostream& report = metrics_to_stdout ? err : out;

  if (metrics) {
    metrics->record([&](JsonWriter& json) {
      json.key("type").value("gap_manifest");
      json.key("schema").value(kMetricsSchemaVersion);
      json.key("base_seed").value(static_cast<std::size_t>(*seed));
      json.key("trials").value(static_cast<std::size_t>(*trials));
      json.key("node_budget").value(static_cast<std::size_t>(*budget));
      json.key("hosts").begin_array();
      for (const std::int64_t n : *host_list) {
        json.value(static_cast<std::int64_t>(n));
      }
      json.end_array();
      json.key("radii").begin_array();
      for (const double r : *radius_list) json.value(r);
      json.end_array();
    });
  }

  report << "optimality gap: size / exact optimum on random connected "
            "unit-disk networks; "
         << *trials << " instances per point, node budget " << *budget
         << "\n";
  TextTable table({"n", "radius", "solved", "opt", "ID", "ND", "EL1", "EL2",
                   "greedy", "MIS", "tree", "cds22"});
  struct Metered {
    const char* label;
    Welford ratio;
  };
  for (std::size_t ni = 0; ni < host_list->size(); ++ni) {
    const int n = static_cast<int>((*host_list)[ni]);
    for (std::size_t ri = 0; ri < radius_list->size(); ++ri) {
      const double radius = (*radius_list)[ri];
      Welford opt;
      Metered heuristics[] = {{"ID", {}},     {"ND", {}},   {"EL1", {}},
                              {"EL2", {}},    {"greedy", {}}, {"MIS", {}},
                              {"tree", {}},   {"cds22", {}}};
      int attempted = 0;
      for (int trial = 0; trial < static_cast<int>(*trials); ++trial) {
        const std::uint64_t instance =
            (ni * radius_list->size() + ri) * static_cast<std::uint64_t>(
                                                 *trials) +
            static_cast<std::uint64_t>(trial);
        Xoshiro256 rng(derive_seed(static_cast<std::uint64_t>(*seed),
                                   0xa11u * instance + 1));
        const auto placed = random_connected_placement(
            n, Field::paper_field(), radius, rng, 5000);
        if (!placed) continue;
        const Graph& g = placed->graph;
        ++attempted;
        std::vector<double> energy;
        energy.reserve(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
          energy.push_back(static_cast<double>(rng.uniform_int(1, 100)));
        }
        BbStats stats;
        const auto exact = bb_min_cds(
            g, BbOptions{static_cast<std::uint64_t>(*budget)}, &stats);
        const std::size_t sizes[] = {
            compute_cds(g, RuleSet::kID, energy).gateway_count,
            compute_cds(g, RuleSet::kND, energy).gateway_count,
            compute_cds(g, RuleSet::kEL1, energy).gateway_count,
            compute_cds(g, RuleSet::kEL2, energy).gateway_count,
            greedy_mcds(g).count(),
            mis_cds(g).count(),
            bfs_tree_cds(g).count(),
            0};
        const Cds22Result backbone = greedy_cds22(g);
        const std::size_t cds22_size = backbone.backbone.count();
        if (metrics) {
          metrics->record([&](JsonWriter& json) {
            json.key("type").value("gap_point");
            json.key("schema").value(kMetricsSchemaVersion);
            json.key("n").value(n);
            json.key("radius").value(radius);
            json.key("trial").value(trial);
            json.key("edges").value(g.num_edges());
            json.key("proven").value(stats.proven);
            json.key("bb_nodes").value(
                static_cast<std::size_t>(stats.nodes));
            if (exact) {
              json.key("optimum").value(exact->count());
            } else {
              json.key("optimum").null();
            }
            json.key("size_id").value(sizes[0]);
            json.key("size_nd").value(sizes[1]);
            json.key("size_el1").value(sizes[2]);
            json.key("size_el2").value(sizes[3]);
            json.key("size_greedy").value(sizes[4]);
            json.key("size_mis").value(sizes[5]);
            json.key("size_tree").value(sizes[6]);
            json.key("size_cds22").value(cds22_size);
            json.key("cds22_full").value(backbone.full_22);
          });
        }
        if (!exact || exact->count() == 0) continue;
        const auto optimum = static_cast<double>(exact->count());
        opt.add(optimum);
        for (std::size_t h = 0; h < 8; ++h) {
          const std::size_t size = h == 7 ? cds22_size : sizes[h];
          heuristics[h].ratio.add(static_cast<double>(size) / optimum);
        }
      }
      std::vector<std::string> row{
          TextTable::fmt(n), TextTable::fmt(radius, 0),
          std::to_string(opt.count()) + "/" + std::to_string(attempted),
          TextTable::fmt(opt.mean())};
      for (const Metered& h : heuristics) {
        row.push_back(h.ratio.count() > 0 ? TextTable::fmt(h.ratio.mean())
                                          : "-");
      }
      table.add_row(std::move(row));
    }
  }
  table.print(report);
  report << "(ratios are mean size/optimum over the proven instances; "
            "1.00 = optimal)\n";
  if (metrics && !metrics_to_stdout) {
    report << "wrote " << metrics->records() << " gap records to "
           << metrics_path << "\n";
  }
  return 0;
}

int cmd_faults(const std::vector<std::string>& tokens, std::ostream& out,
               std::ostream& err) {
  ArgParser parser("pacds faults",
                   "inspect a fault plan's resolved schedule");
  parser.add_option("plan", "fault-plan JSON file (see FAULTS.md)", "");
  parser.add_option("n", "validate node ids against this host count "
                         "(0 = skip validation)", "0");
  parser.add_flag("json", "echo the normalized plan as JSON instead");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const std::string plan_path = parser.option("plan");
  if (plan_path.empty()) {
    err << "error: --plan is required\n" << parser.usage();
    return 2;
  }
  const auto n = parser.option_int("n");
  if (!n || *n < 0) {
    err << "error: bad --n value\n";
    return 2;
  }
  FaultPlan plan;
  try {
    plan = load_fault_plan(plan_path);
    if (*n > 0) validate_fault_plan(plan, static_cast<int>(*n));
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
  if (parser.flag("json")) {
    JsonWriter json(out, 2);
    write_fault_plan(json, plan);
    out << "\n";
    return 0;
  }
  out << "plan: " << plan_path << "\n"
      << "seed: " << plan.seed << "\n"
      << "channel: drop " << plan.channel.drop << ", duplicate "
      << plan.channel.duplicate << ", delay " << plan.channel.delay << "\n"
      << "retry: max " << plan.retry.max_attempts << " attempts, backoff "
      << plan.retry.backoff_base << ".." << plan.retry.backoff_cap
      << " rounds\n";
  const std::vector<ScheduledFault> schedule = resolve_schedule(plan);
  if (schedule.empty()) {
    out << "schedule: empty (channel-only plan)\n";
    return 0;
  }
  out << "schedule (" << schedule.size() << " events):\n";
  TextTable table({"interval", "event", "target", "detail"});
  table.set_align(1, Align::kLeft);
  table.set_align(2, Align::kLeft);
  table.set_align(3, Align::kLeft);
  for (const ScheduledFault& event : schedule) {
    std::string target;
    std::string detail;
    if (event.blackout >= 0) {
      const BlackoutSpec& b =
          plan.blackouts[static_cast<std::size_t>(event.blackout)];
      target = "region " + std::to_string(event.blackout);
      std::ostringstream box;
      box << "[" << b.x0 << "," << b.x1 << "]x[" << b.y0 << "," << b.y1
          << "]";
      detail = box.str();
    } else {
      target = "node " + std::to_string(event.node);
      if (event.kind == FaultKind::kTheft) {
        std::ostringstream amount;
        amount << "steals " << event.amount << " energy";
        detail = amount.str();
      }
    }
    table.add_row({std::to_string(event.interval),
                   to_string(event.kind) + " (" + to_string(event.cause) +
                       ")",
                   target, detail});
  }
  table.print(out);
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& tokens, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("pacds fuzz",
                   "differential fuzzing: random scenarios vs the "
                   "invariant-oracle suite (DESIGN.md §9)");
  parser.add_option("seed", "base seed of the scenario stream", "1");
  parser.add_option("iters", "random scenarios to generate", "100");
  parser.add_option("time-budget",
                    "wall-clock cap in seconds (0 = iterations only)", "0");
  parser.add_option("corpus",
                    "reproducer directory: replayed first, new findings "
                    "written here (empty = none)", "");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  const auto seed = parser.option_int("seed");
  const auto iters = parser.option_int("iters");
  const auto budget = parser.option_double("time-budget");
  if (!seed || *seed < 0 || !iters || *iters < 0 || !budget || *budget < 0) {
    err << "error: --seed/--iters/--time-budget must be non-negative "
           "numbers\n";
    return 2;
  }
  fuzz::FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(*seed);
  options.iterations = static_cast<std::uint64_t>(*iters);
  options.time_budget_seconds = *budget;
  options.corpus_dir = parser.option("corpus");
  try {
    const fuzz::FuzzReport report = fuzz::run_fuzz(options, out);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

int cmd_serve(const std::vector<std::string>& tokens, std::ostream& out,
              std::ostream& err) {
  ArgParser parser("pacds serve",
                   "resident multi-tenant simulation server over JSONL "
                   "requests (DESIGN.md §12)");
  parser.add_option("socket",
                    "serve on this Unix socket path instead of stdin/stdout",
                    "");
  parser.add_option("queue",
                    "bounded admission queue length; lines arriving while "
                    "the queue is full are shed with a queue_full error "
                    "(default 1024, env PACDS_SERVE_QUEUE)",
                    "");
  parser.add_option("max-tenants",
                    "resident tenant cap; creating beyond it evicts the "
                    "least-recently-used tenant (default 64, env "
                    "PACDS_SERVE_MAX_TENANTS)",
                    "");
  parser.add_option("threads",
                    "executor threads for independent tenant groups "
                    "(1 = serial, 0 = all cores); the output stream is "
                    "identical for every value",
                    "1");
  parser.add_flag("help", "show usage");
  if (!parser.parse(tokens)) {
    err << "error: " << parser.error() << "\n" << parser.usage();
    return 2;
  }
  if (parser.flag("help")) {
    out << parser.usage();
    return 0;
  }
  serve::ServeOptions options;
  options.queue_limit = env_size_t("PACDS_SERVE_QUEUE", options.queue_limit);
  options.max_tenants =
      env_size_t("PACDS_SERVE_MAX_TENANTS", options.max_tenants);
  if (!parser.option("queue").empty()) {
    const auto queue = parser.option_int("queue");
    if (!queue || *queue < 1) {
      err << "error: --queue must be a positive integer\n";
      return 2;
    }
    options.queue_limit = static_cast<std::size_t>(*queue);
  }
  if (!parser.option("max-tenants").empty()) {
    const auto cap = parser.option_int("max-tenants");
    if (!cap || *cap < 1) {
      err << "error: --max-tenants must be a positive integer\n";
      return 2;
    }
    options.max_tenants = static_cast<std::size_t>(*cap);
  }
  const auto threads = parser.option_int("threads");
  if (!threads || *threads < 0 || *threads > 1024) {
    err << "error: --threads must be an integer in [0, 1024]\n";
    return 2;
  }
  options.threads = static_cast<int>(*threads);

  serve::Server server(options, out);
  const std::string socket_path = parser.option("socket");
  if (!socket_path.empty()) {
#ifdef __unix__
    return server.run_unix_socket(socket_path);
#else
    err << "error: --socket needs a Unix platform; use stdin mode\n";
    return 2;
#endif
  }
  return server.run(std::cin);
}

std::string main_usage() {
  return "pacds — power-aware connected dominating sets "
         "(Wu-Gao-Stojmenovic, ICPP 2001)\n\n"
         "usage: pacds <command> [options]\n\n"
         "commands:\n"
         "  cds     compute a gateway set (schemes NR/ID/ND/EL1/EL2/RULEK)\n"
         "  info    structural statistics of a network\n"
         "  route   route a packet through the gateway backbone\n"
         "  sim     run the paper's lifetime simulation\n"
         "  sweep   sweep host count x scheme (the figure harness)\n"
         "  gap     approximation ratios vs the exact minimum CDS\n"
         "  faults  inspect a fault plan's resolved schedule\n"
         "  fuzz    differential fuzzing against the invariant oracles\n"
         "  serve   resident multi-tenant server over JSONL requests\n\n"
         "run 'pacds <command> --help' for command options\n";
}

int run(const std::vector<std::string>& tokens, std::ostream& out,
        std::ostream& err) {
  if (tokens.empty() || tokens[0] == "--help" || tokens[0] == "help") {
    out << main_usage();
    return tokens.empty() ? 2 : 0;
  }
  const std::string command = tokens[0];
  const std::vector<std::string> rest(tokens.begin() + 1, tokens.end());
  if (command == "cds") return cmd_cds(rest, out, err);
  if (command == "info") return cmd_info(rest, out, err);
  if (command == "route") return cmd_route(rest, out, err);
  if (command == "sim") return cmd_sim(rest, out, err);
  if (command == "sweep") return cmd_sweep(rest, out, err);
  if (command == "gap") return cmd_gap(rest, out, err);
  if (command == "faults") return cmd_faults(rest, out, err);
  if (command == "fuzz") return cmd_fuzz(rest, out, err);
  if (command == "serve") return cmd_serve(rest, out, err);
  err << "error: unknown command '" << command << "'\n\n" << main_usage();
  return 2;
}

}  // namespace pacds::cli
