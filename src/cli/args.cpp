#include "cli/args.hpp"

#include <sstream>

#include "io/parse_num.hpp"

namespace pacds {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_.emplace_back(name, Spec{help, /*is_flag=*/true, ""});
  flags_[name] = false;
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_.emplace_back(name, Spec{help, /*is_flag=*/false, default_value});
  values_[name] = default_value;
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const auto& [spec_name, spec] : specs_) {
    if (spec_name == name) return &spec;
  }
  return nullptr;
}

bool ArgParser::parse(const std::vector<std::string>& tokens) {
  error_.clear();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      positionals_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const Spec* spec = find(name);
    if (spec == nullptr) {
      error_ = "unknown option --" + name;
      return false;
    }
    if (spec->is_flag) {
      if (inline_value) {
        error_ = "flag --" + name + " does not take a value";
        return false;
      }
      flags_[name] = true;
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else if (i + 1 < tokens.size()) {
      values_[name] = tokens[++i];
    } else {
      error_ = "option --" + name + " needs a value";
      return false;
    }
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

std::string ArgParser::option(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::string{} : it->second;
}

std::optional<std::int64_t> ArgParser::option_int(
    const std::string& name) const {
  const std::string raw = option(name);
  if (raw.empty()) return std::nullopt;
  return parse_int64(raw);
}

std::optional<double> ArgParser::option_double(const std::string& name) const {
  const std::string raw = option(name);
  if (raw.empty()) return std::nullopt;
  return parse_finite_double(raw);
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty()) {
      os << " (default: " << spec.default_value << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pacds
