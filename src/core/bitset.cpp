#include "core/bitset.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "core/simd.hpp"

namespace pacds {

namespace {
constexpr std::size_t words_for(std::size_t nbits) {
  return (nbits + DynBitset::kWordBits - 1) / DynBitset::kWordBits;
}
}  // namespace

DynBitset::DynBitset(std::size_t nbits)
    : nbits_(nbits), words_(words_for(nbits), 0) {}

void DynBitset::set(std::size_t i, bool value) {
  if (i >= nbits_) {
    throw std::out_of_range("DynBitset::set index " + std::to_string(i) +
                            " >= size " + std::to_string(nbits_));
  }
  const Word mask = Word{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void DynBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

void DynBitset::resize_clear(std::size_t nbits) {
  nbits_ = nbits;
  words_.assign(words_for(nbits), 0);
}

void DynBitset::set_all() noexcept {
  for (auto& w : words_) w = ~Word{0};
  clear_padding();
}

bool DynBitset::test(std::size_t i) const {
  if (i >= nbits_) {
    throw std::out_of_range("DynBitset::test index " + std::to_string(i) +
                            " >= size " + std::to_string(nbits_));
  }
  return (words_[i / kWordBits] >> (i % kWordBits)) & Word{1};
}

std::size_t DynBitset::count() const noexcept {
  return simd::active().popcount(words_.data(), words_.size());
}

bool DynBitset::none() const noexcept {
  return simd::active().is_zero(words_.data(), words_.size());
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  check_same_size(other);
  return simd::active().is_subset(words_.data(), other.words_.data(),
                                  words_.size());
}

bool DynBitset::is_subset_of_except(const DynBitset& other,
                                    std::size_t ignore) const {
  check_same_size(other);
  if (ignore >= nbits_) {
    throw std::out_of_range("DynBitset::is_subset_of_except index " +
                            std::to_string(ignore) + " >= size " +
                            std::to_string(nbits_));
  }
  return simd::active().is_subset_except(
      words_.data(), other.words_.data(), words_.size(), ignore / kWordBits,
      Word{1} << (ignore % kWordBits));
}

bool DynBitset::is_subset_of_union(const DynBitset& a,
                                   const DynBitset& b) const {
  check_same_size(a);
  check_same_size(b);
  return simd::active().is_subset_union(words_.data(), a.words_.data(),
                                        b.words_.data(), words_.size());
}

bool DynBitset::intersects(const DynBitset& other) const {
  check_same_size(other);
  return simd::active().intersects(words_.data(), other.words_.data(),
                                   words_.size());
}

DynBitset& DynBitset::operator|=(const DynBitset& other) {
  check_same_size(other);
  simd::active().or_inplace(words_.data(), other.words_.data(), words_.size());
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& other) {
  check_same_size(other);
  simd::active().and_inplace(words_.data(), other.words_.data(),
                             words_.size());
  return *this;
}

DynBitset& DynBitset::operator^=(const DynBitset& other) {
  check_same_size(other);
  simd::active().xor_inplace(words_.data(), other.words_.data(),
                             words_.size());
  return *this;
}

DynBitset& DynBitset::subtract(const DynBitset& other) {
  check_same_size(other);
  simd::active().andnot_inplace(words_.data(), other.words_.data(),
                                words_.size());
  return *this;
}

std::size_t DynBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return nbits_;
}

std::size_t DynBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= nbits_) return nbits_;
  std::size_t w = i / kWordBits;
  Word bits = words_[w] & (~Word{0} << (i % kWordBits));
  while (true) {
    if (bits != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
    }
    if (++w == words_.size()) return nbits_;
    bits = words_[w];
  }
}

std::vector<std::size_t> DynBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each_set([&out](std::size_t i) { out.push_back(i); });
  return out;
}

std::string DynBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each_set([&](std::size_t i) {
    if (!first) os << ", ";
    os << i;
    first = false;
  });
  os << '}';
  return os.str();
}

void DynBitset::check_same_size(const DynBitset& other) const {
  if (nbits_ != other.nbits_) {
    throw std::invalid_argument("DynBitset size mismatch: " +
                                std::to_string(nbits_) + " vs " +
                                std::to_string(other.nbits_));
  }
}

void DynBitset::clear_padding() noexcept {
  const std::size_t rem = nbits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

}  // namespace pacds
