#include "core/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

namespace pacds {

Graph::Graph(NodeId n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  n_ = n;
  adj_.resize(static_cast<std::size_t>(n));
  rows_.assign(static_cast<std::size_t>(n),
               DynBitset(static_cast<std::size_t>(n)));
}

Graph Graph::from_edges(NodeId n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

void Graph::check_node(NodeId v, const char* what) const {
  if (v < 0 || v >= n_) {
    throw std::invalid_argument(std::string("Graph::") + what + ": vertex " +
                                std::to_string(v) + " out of range [0, " +
                                std::to_string(n_) + ")");
  }
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u, "add_edge");
  check_node(v, "add_edge");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(u, v)) return false;
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  rows_[static_cast<std::size_t>(u)].set(static_cast<std::size_t>(v));
  rows_[static_cast<std::size_t>(v)].set(static_cast<std::size_t>(u));
  ++m_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u, "remove_edge");
  check_node(v, "remove_edge");
  if (u == v || !has_edge(u, v)) return false;
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto& av = adj_[static_cast<std::size_t>(v)];
  au.erase(std::lower_bound(au.begin(), au.end(), v));
  av.erase(std::lower_bound(av.begin(), av.end(), u));
  rows_[static_cast<std::size_t>(u)].reset(static_cast<std::size_t>(v));
  rows_[static_cast<std::size_t>(v)].reset(static_cast<std::size_t>(u));
  --m_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u, "has_edge");
  check_node(v, "has_edge");
  if (u == v) return false;
  return rows_[static_cast<std::size_t>(u)].test(static_cast<std::size_t>(v));
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  check_node(v, "neighbors");
  return adj_[static_cast<std::size_t>(v)];
}

NodeId Graph::degree(NodeId v) const {
  check_node(v, "degree");
  return static_cast<NodeId>(adj_[static_cast<std::size_t>(v)].size());
}

const DynBitset& Graph::open_row(NodeId v) const {
  check_node(v, "open_row");
  return rows_[static_cast<std::size_t>(v)];
}

DynBitset Graph::closed_row(NodeId v) const {
  check_node(v, "closed_row");
  DynBitset row = rows_[static_cast<std::size_t>(v)];
  row.set(static_cast<std::size_t>(v));
  return row;
}

bool Graph::closed_covered_by(NodeId v, NodeId u) const {
  check_node(v, "closed_covered_by");
  check_node(u, "closed_covered_by");
  // N[v] ⊆ N[u]  ⇔  v ∈ N[u]  ∧  (N(v) \ {u}) ⊆ N(u), word-parallel.
  if (v == u) return true;
  if (!has_edge(u, v)) return false;  // v ∈ N[u] requires adjacency
  return rows_[static_cast<std::size_t>(v)].is_subset_of_except(
      rows_[static_cast<std::size_t>(u)], static_cast<std::size_t>(u));
}

bool Graph::open_covered_by_pair(NodeId v, NodeId u, NodeId w) const {
  check_node(v, "open_covered_by_pair");
  check_node(u, "open_covered_by_pair");
  check_node(w, "open_covered_by_pair");
  // N(v) ⊆ N(u) ∪ N(w), word-parallel. Note u, w themselves may appear in
  // N(v); they are covered iff the edge {u, w} exists (u ∈ N(w)) — the
  // rule's implicit "u and w are connected" consequence falls out of the
  // raw set test.
  return rows_[static_cast<std::size_t>(v)].is_subset_of_union(
      rows_[static_cast<std::size_t>(u)], rows_[static_cast<std::size_t>(w)]);
}

std::vector<NodeId> Graph::bfs_distances(NodeId src,
                                         const DynBitset* allowed) const {
  check_node(src, "bfs_distances");
  std::vector<NodeId> dist(static_cast<std::size_t>(n_), -1);
  dist[static_cast<std::size_t>(src)] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    // Only allowed vertices (or the source) may relay further hops.
    const bool can_relay =
        cur == src || allowed == nullptr ||
        allowed->test(static_cast<std::size_t>(cur));
    if (!can_relay) continue;
    for (const NodeId nxt : neighbors(cur)) {
      auto& d = dist[static_cast<std::size_t>(nxt)];
      if (d < 0) {
        d = static_cast<NodeId>(dist[static_cast<std::size_t>(cur)] + 1);
        queue.push_back(nxt);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Graph::components() const {
  std::vector<NodeId> comp(static_cast<std::size_t>(n_), -1);
  NodeId next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n_; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nxt : neighbors(cur)) {
        if (comp[static_cast<std::size_t>(nxt)] < 0) {
          comp[static_cast<std::size_t>(nxt)] = next;
          queue.push_back(nxt);
        }
      }
    }
    ++next;
  }
  return comp;
}

NodeId Graph::num_components() const {
  const auto comp = components();
  NodeId max_id = -1;
  for (const NodeId c : comp) max_id = std::max(max_id, c);
  return static_cast<NodeId>(max_id + 1);
}

bool Graph::is_connected() const { return n_ <= 1 || num_components() == 1; }

bool Graph::is_complete() const {
  if (n_ <= 1) return true;
  return m_ == static_cast<std::size_t>(n_) * (static_cast<std::size_t>(n_) - 1) / 2;
}

DynBitset Graph::component_of(NodeId v) const {
  check_node(v, "component_of");
  DynBitset in_comp(static_cast<std::size_t>(n_));
  const auto dist = bfs_distances(v);
  for (NodeId i = 0; i < n_; ++i) {
    if (dist[static_cast<std::size_t>(i)] >= 0) {
      in_comp.set(static_cast<std::size_t>(i));
    }
  }
  return in_comp;
}

Graph Graph::induced(const DynBitset& keep, std::vector<NodeId>* mapping) const {
  if (keep.size() != static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("Graph::induced: mask size mismatch");
  }
  std::vector<NodeId> old_of_new;
  std::vector<NodeId> new_of_old(static_cast<std::size_t>(n_), -1);
  keep.for_each_set([&](std::size_t i) {
    new_of_old[i] = static_cast<NodeId>(old_of_new.size());
    old_of_new.push_back(static_cast<NodeId>(i));
  });
  Graph sub(static_cast<NodeId>(old_of_new.size()));
  for (const NodeId old_u : old_of_new) {
    for (const NodeId old_v : neighbors(old_u)) {
      if (old_v > old_u && keep.test(static_cast<std::size_t>(old_v))) {
        sub.add_edge(new_of_old[static_cast<std::size_t>(old_u)],
                     new_of_old[static_cast<std::size_t>(old_v)]);
      }
    }
  }
  if (mapping != nullptr) *mapping = std::move(old_of_new);
  return sub;
}

std::vector<NodeId> Graph::shortest_path(NodeId src, NodeId dst,
                                         const DynBitset* allowed) const {
  check_node(src, "shortest_path");
  check_node(dst, "shortest_path");
  if (src == dst) return {src};
  std::vector<NodeId> parent(static_cast<std::size_t>(n_), -1);
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  seen[static_cast<std::size_t>(src)] = 1;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    const bool can_relay =
        cur == src || allowed == nullptr ||
        allowed->test(static_cast<std::size_t>(cur));
    if (!can_relay) continue;
    for (const NodeId nxt : neighbors(cur)) {
      if (seen[static_cast<std::size_t>(nxt)]) continue;
      seen[static_cast<std::size_t>(nxt)] = 1;
      parent[static_cast<std::size_t>(nxt)] = cur;
      if (nxt == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId p = cur; p != -1; p = parent[static_cast<std::size_t>(p)]) {
          path.push_back(p);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(nxt);
    }
  }
  return {};
}

std::optional<NodeId> Graph::diameter() const {
  if (n_ == 0 || !is_connected()) return std::nullopt;
  NodeId diam = 0;
  for (NodeId s = 0; s < n_; ++s) {
    for (const NodeId d : bfs_distances(s)) diam = std::max(diam, d);
  }
  return diam;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(m_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (v > u) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::operator==(const Graph& other) const {
  return n_ == other.n_ && adj_ == other.adj_;
}

}  // namespace pacds
