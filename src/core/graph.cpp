#include "core/graph.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <stdexcept>
#include <string>

namespace pacds {

namespace {

/// Global mutation clock backing Graph::version(): every constructed or
/// mutated graph gets a stamp no other graph state ever carried, so equal
/// stamps imply equal adjacency.
std::atomic<std::uint64_t> g_graph_clock{0};

std::uint64_t next_stamp() noexcept {
  return g_graph_clock.fetch_add(1, std::memory_order_relaxed) + 1;
}

constexpr NodeId kMinSliceCap = 4;

}  // namespace

void Graph::stamp() noexcept { version_ = next_stamp(); }

Graph::Graph(NodeId n) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  n_ = n;
  begin_.assign(static_cast<std::size_t>(n), 0);
  cap_.assign(static_cast<std::size_t>(n), 0);
  deg_.assign(static_cast<std::size_t>(n), 0);
  stamp();
}

Graph Graph::from_edges(NodeId n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

void Graph::check_node(NodeId v, const char* what) const {
  if (v < 0 || v >= n_) {
    throw std::invalid_argument(std::string("Graph::") + what + ": vertex " +
                                std::to_string(v) + " out of range [0, " +
                                std::to_string(n_) + ")");
  }
}

void Graph::relocate(NodeId v, NodeId new_cap) {
  const auto i = static_cast<std::size_t>(v);
  const std::size_t old_begin = begin_[i];
  const auto deg = static_cast<std::size_t>(deg_[i]);
  dead_ += static_cast<std::size_t>(cap_[i]);
  begin_[i] = arena_.size();
  cap_[i] = new_cap;
  arena_.resize(arena_.size() + static_cast<std::size_t>(new_cap));
  std::copy_n(arena_.begin() + static_cast<std::ptrdiff_t>(old_begin), deg,
              arena_.begin() + static_cast<std::ptrdiff_t>(begin_[i]));
}

void Graph::insert_neighbor(NodeId v, NodeId x) {
  const auto i = static_cast<std::size_t>(v);
  if (deg_[i] == cap_[i]) {
    relocate(v, std::max(kMinSliceCap, cap_[i] * 2));
  }
  NodeId* base = arena_.data() + begin_[i];
  NodeId* end = base + deg_[i];
  NodeId* pos = std::lower_bound(base, end, x);
  std::copy_backward(pos, end, end + 1);
  *pos = x;
  ++deg_[i];
}

void Graph::erase_neighbor(NodeId v, NodeId x) {
  const auto i = static_cast<std::size_t>(v);
  NodeId* base = arena_.data() + begin_[i];
  NodeId* end = base + deg_[i];
  NodeId* pos = std::lower_bound(base, end, x);
  std::copy(pos + 1, end, pos);
  --deg_[i];
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u, "add_edge");
  check_node(v, "add_edge");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(u, v)) return false;
  insert_neighbor(u, v);
  insert_neighbor(v, u);
  ++m_;
  stamp();
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u, "remove_edge");
  check_node(v, "remove_edge");
  if (u == v || !has_edge(u, v)) return false;
  erase_neighbor(u, v);
  erase_neighbor(v, u);
  --m_;
  stamp();
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u, "has_edge");
  check_node(v, "has_edge");
  if (u == v) return false;
  // Probe the smaller slice.
  if (deg_[static_cast<std::size_t>(u)] > deg_[static_cast<std::size_t>(v)]) {
    std::swap(u, v);
  }
  const auto s = slice(u);
  return std::binary_search(s.begin(), s.end(), v);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  check_node(v, "neighbors");
  return slice(v);
}

NodeId Graph::degree(NodeId v) const {
  check_node(v, "degree");
  return deg_[static_cast<std::size_t>(v)];
}

DynBitset Graph::closed_row(NodeId v) const {
  check_node(v, "closed_row");
  DynBitset row(static_cast<std::size_t>(n_));
  for (const NodeId x : slice(v)) row.set(static_cast<std::size_t>(x));
  row.set(static_cast<std::size_t>(v));
  return row;
}

bool Graph::closed_covered_by(NodeId v, NodeId u) const {
  check_node(v, "closed_covered_by");
  check_node(u, "closed_covered_by");
  // N[v] ⊆ N[u]  ⇔  v ∈ N[u]  ∧  (N(v) \ {u}) ⊆ N(u), as one merge scan
  // over the two sorted slices.
  if (v == u) return true;
  const auto sv = slice(v);
  const auto su = slice(u);
  if (sv.size() > su.size() + 1) return false;
  bool adjacent = false;
  std::size_t j = 0;
  for (const NodeId x : sv) {
    if (x == u) {
      adjacent = true;
      continue;
    }
    while (j < su.size() && su[j] < x) ++j;
    if (j == su.size() || su[j] != x) return false;
    ++j;
  }
  return adjacent;
}

bool Graph::open_covered_by_pair(NodeId v, NodeId u, NodeId w) const {
  check_node(v, "open_covered_by_pair");
  check_node(u, "open_covered_by_pair");
  check_node(w, "open_covered_by_pair");
  // N(v) ⊆ N(u) ∪ N(w) as a three-pointer merge. Note u, w themselves may
  // appear in N(v); they are covered iff the edge {u, w} exists (u ∈ N(w))
  // — the rule's implicit "u and w are connected" consequence falls out of
  // the raw set test.
  const auto sv = slice(v);
  const auto su = slice(u);
  const auto sw = slice(w);
  if (sv.size() > su.size() + sw.size()) return false;
  std::size_t j = 0;
  std::size_t k = 0;
  for (const NodeId x : sv) {
    while (j < su.size() && su[j] < x) ++j;
    if (j < su.size() && su[j] == x) continue;
    while (k < sw.size() && sw[k] < x) ++k;
    if (k < sw.size() && sw[k] == x) continue;
    return false;
  }
  return true;
}

bool Graph::open_covered_by_closed(NodeId v, NodeId u) const {
  check_node(v, "open_covered_by_closed");
  check_node(u, "open_covered_by_closed");
  const auto sv = slice(v);
  const auto su = slice(u);
  if (sv.size() > su.size() + 1) return false;
  std::size_t j = 0;
  for (const NodeId x : sv) {
    if (x == u) continue;
    while (j < su.size() && su[j] < x) ++j;
    if (j == su.size() || su[j] != x) return false;
    ++j;
  }
  return true;
}

std::vector<NodeId> Graph::bfs_distances(NodeId src,
                                         const DynBitset* allowed) const {
  check_node(src, "bfs_distances");
  std::vector<NodeId> dist(static_cast<std::size_t>(n_), -1);
  dist[static_cast<std::size_t>(src)] = 0;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    // Only allowed vertices (or the source) may relay further hops.
    const bool can_relay =
        cur == src || allowed == nullptr ||
        allowed->test(static_cast<std::size_t>(cur));
    if (!can_relay) continue;
    for (const NodeId nxt : neighbors(cur)) {
      auto& d = dist[static_cast<std::size_t>(nxt)];
      if (d < 0) {
        d = static_cast<NodeId>(dist[static_cast<std::size_t>(cur)] + 1);
        queue.push_back(nxt);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Graph::components() const {
  std::vector<NodeId> comp(static_cast<std::size_t>(n_), -1);
  NodeId next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n_; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    comp[static_cast<std::size_t>(s)] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      for (const NodeId nxt : neighbors(cur)) {
        if (comp[static_cast<std::size_t>(nxt)] < 0) {
          comp[static_cast<std::size_t>(nxt)] = next;
          queue.push_back(nxt);
        }
      }
    }
    ++next;
  }
  return comp;
}

NodeId Graph::num_components() const {
  const auto comp = components();
  NodeId max_id = -1;
  for (const NodeId c : comp) max_id = std::max(max_id, c);
  return static_cast<NodeId>(max_id + 1);
}

bool Graph::is_connected() const { return n_ <= 1 || num_components() == 1; }

bool Graph::is_complete() const {
  if (n_ <= 1) return true;
  return m_ == static_cast<std::size_t>(n_) * (static_cast<std::size_t>(n_) - 1) / 2;
}

DynBitset Graph::component_of(NodeId v) const {
  check_node(v, "component_of");
  DynBitset in_comp(static_cast<std::size_t>(n_));
  const auto dist = bfs_distances(v);
  for (NodeId i = 0; i < n_; ++i) {
    if (dist[static_cast<std::size_t>(i)] >= 0) {
      in_comp.set(static_cast<std::size_t>(i));
    }
  }
  return in_comp;
}

Graph Graph::induced(const DynBitset& keep, std::vector<NodeId>* mapping) const {
  if (keep.size() != static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("Graph::induced: mask size mismatch");
  }
  std::vector<NodeId> old_of_new;
  std::vector<NodeId> new_of_old(static_cast<std::size_t>(n_), -1);
  keep.for_each_set([&](std::size_t i) {
    new_of_old[i] = static_cast<NodeId>(old_of_new.size());
    old_of_new.push_back(static_cast<NodeId>(i));
  });
  Graph sub(static_cast<NodeId>(old_of_new.size()));
  for (const NodeId old_u : old_of_new) {
    for (const NodeId old_v : neighbors(old_u)) {
      if (old_v > old_u && keep.test(static_cast<std::size_t>(old_v))) {
        sub.add_edge(new_of_old[static_cast<std::size_t>(old_u)],
                     new_of_old[static_cast<std::size_t>(old_v)]);
      }
    }
  }
  if (mapping != nullptr) *mapping = std::move(old_of_new);
  return sub;
}

std::vector<NodeId> Graph::shortest_path(NodeId src, NodeId dst,
                                         const DynBitset* allowed) const {
  check_node(src, "shortest_path");
  check_node(dst, "shortest_path");
  if (src == dst) return {src};
  std::vector<NodeId> parent(static_cast<std::size_t>(n_), -1);
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  seen[static_cast<std::size_t>(src)] = 1;
  std::deque<NodeId> queue{src};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    const bool can_relay =
        cur == src || allowed == nullptr ||
        allowed->test(static_cast<std::size_t>(cur));
    if (!can_relay) continue;
    for (const NodeId nxt : neighbors(cur)) {
      if (seen[static_cast<std::size_t>(nxt)]) continue;
      seen[static_cast<std::size_t>(nxt)] = 1;
      parent[static_cast<std::size_t>(nxt)] = cur;
      if (nxt == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId p = cur; p != -1; p = parent[static_cast<std::size_t>(p)]) {
          path.push_back(p);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(nxt);
    }
  }
  return {};
}

std::optional<NodeId> Graph::diameter() const {
  if (n_ == 0 || !is_connected()) return std::nullopt;
  NodeId diam = 0;
  for (NodeId s = 0; s < n_; ++s) {
    for (const NodeId d : bfs_distances(s)) diam = std::max(diam, d);
  }
  return diam;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(m_);
  for (NodeId u = 0; u < n_; ++u) {
    for (const NodeId v : neighbors(u)) {
      if (v > u) out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::operator==(const Graph& other) const {
  if (n_ != other.n_ || m_ != other.m_) return false;
  for (NodeId v = 0; v < n_; ++v) {
    const auto a = slice(v);
    const auto b = other.slice(v);
    if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) return false;
  }
  return true;
}

}  // namespace pacds
