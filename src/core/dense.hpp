#pragma once
// Lazily-materialized dense adjacency rows for small graphs. The Graph
// substrate itself is CSR-only (O(n + m) bits — see graph.hpp), which keeps
// million-node networks affordable but turns each coverage test into a
// sorted-merge scan. For the flat full-graph passes at paper-scale n the
// old word-parallel tests are still the fastest option, so this cache
// rebuilds one DynBitset row per vertex on demand — keyed on
// Graph::version(), so repeated passes over an unchanged graph pay the
// O(n + m) build exactly once — and the kernels pick dense or merge per
// call. Above kMaxNodes the cache refuses to build (that regime belongs to
// the tiled engine, which materializes dense rows per tile instead).

#include <cstdint>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

class DenseAdjacency {
 public:
  /// Largest vertex count the cache will materialize: 4096 nodes = 2 MiB of
  /// rows, roughly L2-resident; beyond that the O(n^2/64) build and footprint
  /// start defeating the CSR substrate's point.
  static constexpr NodeId kMaxNodes = 4096;

  /// Brings the rows up to date with `g` (no-op when the version stamp
  /// matches). Returns active(): whether dense rows are available.
  bool sync(const Graph& g) {
    if (g.num_nodes() > kMaxNodes) {
      active_ = false;
      synced_ = false;
      return false;
    }
    if (synced_ && version_ == g.version()) return active_;
    rebuild(g);
    return active_;
  }

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Open-neighborhood row N(v). Only valid while active().
  [[nodiscard]] const DynBitset& row(NodeId v) const {
    return rows_[static_cast<std::size_t>(v)];
  }

 private:
  void rebuild(const Graph& g);

  std::uint64_t version_ = 0;
  bool synced_ = false;
  bool active_ = false;
  std::vector<DynBitset> rows_;
};

}  // namespace pacds
