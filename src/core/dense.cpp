#include "core/dense.hpp"

namespace pacds {

void DenseAdjacency::rebuild(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (rows_.size() < n) rows_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    DynBitset& row = rows_[v];
    row.resize_clear(n);  // keeps capacity: allocation-free once warm
    for (const NodeId x : g.neighbors(static_cast<NodeId>(v))) {
      row.set(static_cast<std::size_t>(x));
    }
  }
  version_ = g.version();
  synced_ = true;
  active_ = true;
}

}  // namespace pacds
