#include "core/redundancy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/articulation.hpp"

namespace pacds {

DynBitset augment_m_domination(const Graph& g, const DynBitset& gateways,
                               int m, const PriorityKey& key) {
  if (m < 1) throw std::invalid_argument("augment_m_domination: m < 1");
  if (gateways.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("augment_m_domination: mask size mismatch");
  }
  DynBitset result = gateways;
  // Process hosts in ascending key order so the weakest hosts get their
  // backups assigned first (their promotions then help later hosts too).
  for (const NodeId v : key.ascending_order()) {
    if (result.test(static_cast<std::size_t>(v))) continue;
    const auto nbrs = g.neighbors(v);
    int covered = 0;
    for (const NodeId u : nbrs) {
      if (result.test(static_cast<std::size_t>(u))) ++covered;
    }
    const int needed =
        std::min(m, static_cast<int>(nbrs.size())) - covered;
    if (needed <= 0) continue;
    // Promote the highest-key non-gateway neighbors.
    std::vector<NodeId> candidates;
    for (const NodeId u : nbrs) {
      if (!result.test(static_cast<std::size_t>(u))) candidates.push_back(u);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&key](NodeId a, NodeId b) { return key.less(b, a); });
    for (int i = 0; i < needed && i < static_cast<int>(candidates.size());
         ++i) {
      result.set(static_cast<std::size_t>(candidates[i]));
    }
  }
  return result;
}

bool is_m_dominating(const Graph& g, const DynBitset& set, int m) {
  if (set.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("is_m_dominating: mask size mismatch");
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (set.test(static_cast<std::size_t>(v))) continue;
    const auto nbrs = g.neighbors(v);
    int covered = 0;
    for (const NodeId u : nbrs) {
      if (set.test(static_cast<std::size_t>(u))) ++covered;
    }
    if (covered < std::min(m, static_cast<int>(nbrs.size()))) return false;
  }
  return true;
}

DynBitset backbone_cut_vertices(const Graph& g, const DynBitset& gateways) {
  std::vector<NodeId> mapping;
  const Graph backbone = g.induced(gateways, &mapping);
  const DynBitset local_cuts = articulation_points(backbone);
  DynBitset cuts(static_cast<std::size_t>(g.num_nodes()));
  local_cuts.for_each_set([&](std::size_t i) {
    cuts.set(static_cast<std::size_t>(mapping[i]));
  });
  return cuts;
}

DynBitset augment_biconnectivity(const Graph& g, const DynBitset& gateways,
                                 const PriorityKey& key, int max_rounds) {
  if (gateways.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("augment_biconnectivity: mask size mismatch");
  }
  DynBitset result = gateways;
  for (int round = 0; round < max_rounds; ++round) {
    const DynBitset cuts = backbone_cut_vertices(g, result);
    if (cuts.none()) break;
    // Try to patch some cut vertex with a single promotion.
    NodeId best_host = -1;
    bool patched = false;
    cuts.for_each_set([&](std::size_t cut_idx) {
      if (patched) return;
      const auto a = static_cast<NodeId>(cut_idx);
      // Label the components of (backbone - a).
      DynBitset without_a = result;
      without_a.reset(cut_idx);
      std::vector<NodeId> mapping;
      const Graph sub = g.induced(without_a, &mapping);
      const auto comp = sub.components();
      std::vector<NodeId> comp_of(static_cast<std::size_t>(g.num_nodes()),
                                  -1);
      for (std::size_t i = 0; i < mapping.size(); ++i) {
        comp_of[static_cast<std::size_t>(mapping[i])] =
            comp[static_cast<std::size_t>(i)];
      }
      // A non-backbone host adjacent to two different components merges a
      // block boundary around `a`.
      for (NodeId h = 0; h < g.num_nodes(); ++h) {
        if (result.test(static_cast<std::size_t>(h))) continue;
        NodeId first = -1;
        bool bridges_blocks = false;
        for (const NodeId u : g.neighbors(h)) {
          const NodeId c = comp_of[static_cast<std::size_t>(u)];
          if (c < 0) continue;
          if (first < 0) {
            first = c;
          } else if (c != first) {
            bridges_blocks = true;
            break;
          }
        }
        if (bridges_blocks && (best_host < 0 || key.less(best_host, h))) {
          best_host = h;
        }
      }
      if (best_host >= 0) patched = true;
    });
    if (best_host < 0) break;  // no single-host patch anywhere
    result.set(static_cast<std::size_t>(best_host));
  }
  return result;
}

namespace {

/// Fraction of connected pairs reachable with gateway-only interiors.
double delivery_fraction(const Graph& g, const DynBitset& gateways) {
  std::size_t connected_pairs = 0;
  std::size_t served = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto full = g.bfs_distances(s);
    const auto restricted = g.bfs_distances(s, &gateways);
    for (NodeId t = static_cast<NodeId>(s + 1); t < g.num_nodes(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (full[ti] <= 0) continue;
      ++connected_pairs;
      if (restricted[ti] >= 0) ++served;
    }
  }
  return connected_pairs == 0
             ? 1.0
             : static_cast<double>(served) /
                   static_cast<double>(connected_pairs);
}

}  // namespace

double single_failure_delivery(const Graph& g, const DynBitset& gateways,
                               double* baseline) {
  if (baseline != nullptr) *baseline = delivery_fraction(g, gateways);
  if (gateways.none()) {
    return delivery_fraction(g, gateways);
  }
  double sum = 0.0;
  std::size_t failures = 0;
  gateways.for_each_set([&](std::size_t gw) {
    DynBitset degraded = gateways;
    degraded.reset(gw);
    sum += delivery_fraction(g, degraded);
    ++failures;
  });
  return sum / static_cast<double>(failures);
}

}  // namespace pacds
