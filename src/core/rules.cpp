#include "core/rules.hpp"

#include <vector>

#include "core/verify.hpp"

namespace pacds {

std::string to_string(Rule2Form form) {
  switch (form) {
    case Rule2Form::kSimple:
      return "simple";
    case Rule2Form::kRefined:
      return "refined";
  }
  return "?";
}

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSimultaneous:
      return "simultaneous";
    case Strategy::kSequential:
      return "sequential";
    case Strategy::kVerified:
      return "verified";
  }
  return "?";
}

bool rule1_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, NodeId v) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  for (const NodeId u : g.neighbors(v)) {
    if (!marked.test(static_cast<std::size_t>(u))) continue;
    if (key.less(v, u) && g.closed_covered_by(v, u)) return true;
  }
  return false;
}

namespace {

/// Collects the currently-marked neighbors of v into `out` (reused buffer).
void marked_neighbors(const Graph& g, const DynBitset& marked, NodeId v,
                      std::vector<NodeId>& out) {
  out.clear();
  for (const NodeId u : g.neighbors(v)) {
    if (marked.test(static_cast<std::size_t>(u))) out.push_back(u);
  }
}

/// The refined case analysis for one ordered arrangement (u, w) of a pair of
/// marked neighbors, given that v is covered by {u, w}.
///   cov_u: N(u) ⊆ N(v) ∪ N(w),  cov_w: N(w) ⊆ N(u) ∪ N(v).
/// Case 1: neither competitor covered        -> v yields unconditionally.
/// Case 2: exactly u covered                  -> v yields iff key(v) < key(u).
/// Case 3: both covered                       -> v yields iff strict key-min.
bool refined_cases(const PriorityKey& key, NodeId v, NodeId u, NodeId w,
                   bool cov_u, bool cov_w) {
  if (!cov_u && !cov_w) return true;
  if (cov_u && !cov_w) return key.less(v, u);
  if (cov_w && !cov_u) return key.less(v, w);
  return key.less(v, u) && key.less(v, w);
}

}  // namespace

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v,
                               std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!key.is_min_of_three(v, u, w)) continue;
      if (g.open_covered_by_pair(v, u, w)) return true;
    }
  }
  return false;
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v,
                                std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!g.open_covered_by_pair(v, u, w)) continue;
      const bool cov_u = g.open_covered_by_pair(u, v, w);
      const bool cov_w = g.open_covered_by_pair(w, u, v);
      if (refined_cases(key, v, u, w, cov_u, cov_w)) return true;
    }
  }
  return false;
}

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_simple_would_unmark(g, marked, key, v, scratch);
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v,
                        std::vector<NodeId>& scratch) {
  return form == Rule2Form::kSimple
             ? rule2_simple_would_unmark(g, marked, key, v, scratch)
             : rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_would_unmark(g, marked, key, form, v, scratch);
}

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked, Executor* exec,
                                  DynBitset& next) {
  next = marked;
  auto body = [&](std::size_t begin, std::size_t end, std::size_t /*lane*/) {
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      if (rule1_would_unmark(g, marked, key, static_cast<NodeId>(i))) {
        next.reset(i);
      }
    });
  };
  run_sharded(exec, marked.size(), DynBitset::kWordBits, body);
}

void simultaneous_rule2_pass_into(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const std::size_t lanes = ctx.lanes();
  std::vector<std::vector<NodeId>> local_scratch;
  std::vector<std::vector<NodeId>>* bufs;
  if (ctx.workspace != nullptr) {
    if (ctx.workspace->lane_neighbors.size() < lanes) {
      ctx.workspace->lane_neighbors.resize(lanes);
    }
    bufs = &ctx.workspace->lane_neighbors;
  } else {
    local_scratch.resize(lanes);
    bufs = &local_scratch;
  }
  auto body = [&](std::size_t begin, std::size_t end, std::size_t lane) {
    std::vector<NodeId>& scratch = (*bufs)[lane];
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      if (rule2_would_unmark(g, marked, key, form, static_cast<NodeId>(i),
                             scratch)) {
        next.reset(i);
      }
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

DynBitset simultaneous_rule1_pass(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked) {
  DynBitset next;
  simultaneous_rule1_pass_into(g, key, marked, nullptr, next);
  return next;
}

DynBitset simultaneous_rule2_pass(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked) {
  DynBitset next;
  simultaneous_rule2_pass_into(g, key, form, marked, ExecContext{}, next);
  return next;
}

namespace {

void apply_sequential(const Graph& g, const PriorityKey& key,
                      const RuleConfig& config, bool verified,
                      DynBitset& marked) {
  const auto order = key.ascending_order();
  std::vector<NodeId> scratch;
  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool changed = false;
    for (const NodeId v : order) {
      if (!marked.test(static_cast<std::size_t>(v))) continue;
      const bool fires =
          (config.use_rule1 && rule1_would_unmark(g, marked, key, v)) ||
          (config.use_rule2 &&
           rule2_would_unmark(g, marked, key, config.rule2_form, v, scratch));
      if (!fires) continue;
      if (verified && !removal_is_safe(g, marked, v)) continue;
      marked.reset(static_cast<std::size_t>(v));
      changed = true;
    }
    if (!changed) break;
  }
}

}  // namespace

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, const ExecContext& ctx,
                 DynBitset& marked) {
  switch (config.strategy) {
    case Strategy::kSimultaneous: {
      CdsWorkspace local;
      CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
      ExecContext pass_ctx = ctx;
      pass_ctx.workspace = &ws;
      // Stage double-buffering: build the next mark set in ws.stage, then
      // swap buffers — no per-pass bitset allocation once ws is warm.
      if (config.use_rule1) {
        simultaneous_rule1_pass_into(g, key, marked, ctx.executor, ws.stage);
        std::swap(marked, ws.stage);
      }
      if (config.use_rule2) {
        simultaneous_rule2_pass_into(g, key, config.rule2_form, marked,
                                     pass_ctx, ws.stage);
        std::swap(marked, ws.stage);
      }
      return;
    }
    case Strategy::kSequential:
      apply_sequential(g, key, config, /*verified=*/false, marked);
      return;
    case Strategy::kVerified:
      apply_sequential(g, key, config, /*verified=*/true, marked);
      return;
  }
}

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, DynBitset& marked) {
  apply_rules(g, key, config, ExecContext{}, marked);
}

}  // namespace pacds
