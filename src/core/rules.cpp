#include "core/rules.hpp"

#include <bit>
#include <vector>

#include "core/verify.hpp"

namespace pacds {

std::string to_string(Rule2Form form) {
  switch (form) {
    case Rule2Form::kSimple:
      return "simple";
    case Rule2Form::kRefined:
      return "refined";
  }
  return "?";
}

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSimultaneous:
      return "simultaneous";
    case Strategy::kSequential:
      return "sequential";
    case Strategy::kVerified:
      return "verified";
  }
  return "?";
}

bool rule1_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, NodeId v) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  for (const NodeId u : g.neighbors(v)) {
    if (!marked.test(static_cast<std::size_t>(u))) continue;
    if (key.less(v, u) && g.closed_covered_by(v, u)) return true;
  }
  return false;
}

namespace {

/// Collects the currently-marked neighbors of v into `out` (reused buffer).
void marked_neighbors(const Graph& g, const DynBitset& marked, NodeId v,
                      std::vector<NodeId>& out) {
  out.clear();
  for (const NodeId u : g.neighbors(v)) {
    if (marked.test(static_cast<std::size_t>(u))) out.push_back(u);
  }
}

// ---- Dense fast path -----------------------------------------------------
// With cached DynBitset rows available (DenseAdjacency, small n), the pair
// loop hoists the residual rem = N(v) \ N(u) out of the inner loop: v is
// covered by {u, w} iff rem ⊆ N(w), testable over only rem's nonzero word
// range after a popcount-vs-degree(w) gate. On unit-disk instances most
// candidate pairs die on the gate or the first residual word.

using Word = DynBitset::Word;

/// One lazily-built residual N(a) \ N(b) with its nonzero word range and
/// popcount; the backing buffer is a reusable workspace lane vector.
class Residual {
 public:
  explicit Residual(std::vector<Word>& buf) : buf_(buf) {}

  void build(const DynBitset& a, const DynBitset& b) {
    const auto wa = a.words();
    const auto wb = b.words();
    buf_.resize(wa.size());
    lo_ = wa.size();
    hi_ = 0;
    pop_ = 0;
    for (std::size_t k = 0; k < wa.size(); ++k) {
      const Word w = wa[k] & ~wb[k];
      buf_[k] = w;
      if (w != 0) {
        if (pop_ == 0) lo_ = k;
        hi_ = k;
        pop_ += static_cast<std::size_t>(std::popcount(w));
      }
    }
    built_ = true;
  }

  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] std::size_t pop() const { return pop_; }

  /// Is the residual contained in `s`? Scans only the nonzero word range.
  [[nodiscard]] bool subset_of(const DynBitset& s) const {
    if (pop_ == 0) return true;
    const auto ws = s.words();
    for (std::size_t k = lo_; k <= hi_; ++k) {
      if ((buf_[k] & ~ws[k]) != 0) return false;
    }
    return true;
  }

 private:
  std::vector<Word>& buf_;
  std::size_t lo_ = 0;
  std::size_t hi_ = 0;
  std::size_t pop_ = 0;
  bool built_ = false;
};

/// Dense-row twin of rule1_would_unmark (v already known marked). With
/// u ∈ N(v), N[v] ⊆ N[u] reduces to N(v) \ {u} ⊆ N(u).
bool rule1_dense_would_unmark(const Graph& g, const DenseAdjacency& dense,
                              const DynBitset& marked, const PriorityKey& key,
                              NodeId v) {
  const DynBitset& rv = dense.row(v);
  for (const NodeId u : g.neighbors(v)) {
    if (!marked.test(static_cast<std::size_t>(u))) continue;
    if (key.less(v, u) &&
        rv.is_subset_of_except(dense.row(u), static_cast<std::size_t>(u))) {
      return true;
    }
  }
  return false;
}

/// Dense-row twin of rule2_{simple,refined}_would_unmark (v already known
/// marked). Decision-identical to the merge-based predicates: same pair
/// order, same coverage tests, same refined case analysis.
bool rule2_dense_would_unmark(const Graph& g, const DenseAdjacency& dense,
                              const DynBitset& marked, const PriorityKey& key,
                              Rule2Form form, NodeId v,
                              std::vector<NodeId>& scratch,
                              CdsWorkspace::Rule2Lane& lane) {
  marked_neighbors(g, marked, v, scratch);
  if (scratch.size() < 2) return false;
  const DynBitset& rv = dense.row(v);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const NodeId u = scratch[i];
    const DynBitset& ru = dense.row(u);
    Residual rem(lane.rem);    // N(v) \ N(u), shared by every w of this u
    Residual rem2(lane.rem2);  // N(u) \ N(v), refined coverage of u
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId w = scratch[j];
      if (form == Rule2Form::kSimple && !key.is_min_of_three(v, u, w)) {
        continue;
      }
      if (!rem.built()) rem.build(rv, ru);
      const auto degw = static_cast<std::size_t>(g.degree(w));
      if (rem.pop() > degw) continue;              // can't fit inside N(w)
      if (!rem.subset_of(dense.row(w))) continue;  // v not covered by {u,w}
      if (form == Rule2Form::kSimple) return true;
      if (!rem2.built()) rem2.build(ru, rv);
      const bool cov_u = rem2.pop() <= degw && rem2.subset_of(dense.row(w));
      const bool cov_w = dense.row(w).is_subset_of_union(ru, rv);
      if (rule2_refined_cases(key, v, u, w, cov_u, cov_w)) return true;
    }
  }
  return false;
}

/// Syncs the workspace dense cache against `g` and returns it when usable.
const DenseAdjacency* synced_dense(const ExecContext& ctx, const Graph& g) {
  if (ctx.workspace == nullptr) return nullptr;
  return ctx.workspace->dense.sync(g) ? &ctx.workspace->dense : nullptr;
}

}  // namespace

/// Case 1: neither competitor covered -> v yields unconditionally.
/// Case 2: exactly one covered        -> v yields iff it loses to that one.
/// Case 3: both covered               -> v yields iff strict key-min.
bool rule2_refined_cases(const PriorityKey& key, NodeId v, NodeId u, NodeId w,
                         bool cov_u, bool cov_w) {
  if (!cov_u && !cov_w) return true;
  if (cov_u && !cov_w) return key.less(v, u);
  if (cov_w && !cov_u) return key.less(v, w);
  return key.less(v, u) && key.less(v, w);
}

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v,
                               std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!key.is_min_of_three(v, u, w)) continue;
      if (g.open_covered_by_pair(v, u, w)) return true;
    }
  }
  return false;
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v,
                                std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!g.open_covered_by_pair(v, u, w)) continue;
      const bool cov_u = g.open_covered_by_pair(u, v, w);
      const bool cov_w = g.open_covered_by_pair(w, u, v);
      if (rule2_refined_cases(key, v, u, w, cov_u, cov_w)) return true;
    }
  }
  return false;
}

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_simple_would_unmark(g, marked, key, v, scratch);
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v,
                        std::vector<NodeId>& scratch) {
  return form == Rule2Form::kSimple
             ? rule2_simple_would_unmark(g, marked, key, v, scratch)
             : rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_would_unmark(g, marked, key, form, v, scratch);
}

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const DenseAdjacency* dense = synced_dense(ctx, g);
  auto body = [&](std::size_t begin, std::size_t end, std::size_t /*lane*/) {
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool fires =
          dense != nullptr ? rule1_dense_would_unmark(g, *dense, marked, key, v)
                           : rule1_would_unmark(g, marked, key, v);
      if (fires) next.reset(i);
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked, Executor* exec,
                                  DynBitset& next) {
  ExecContext ctx;
  ctx.executor = exec;
  simultaneous_rule1_pass_into(g, key, marked, ctx, next);
}

void simultaneous_rule2_pass_into(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const std::size_t lanes = ctx.lanes();
  CdsWorkspace local;
  CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
  if (ws.lane_neighbors.size() < lanes) ws.lane_neighbors.resize(lanes);
  if (ws.lane_residuals.size() < lanes) ws.lane_residuals.resize(lanes);
  const DenseAdjacency* dense =
      ws.dense.sync(g) ? &ws.dense : nullptr;
  auto body = [&](std::size_t begin, std::size_t end, std::size_t lane) {
    std::vector<NodeId>& scratch = ws.lane_neighbors[lane];
    CdsWorkspace::Rule2Lane& resid = ws.lane_residuals[lane];
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool fires =
          dense != nullptr
              ? rule2_dense_would_unmark(g, *dense, marked, key, form, v,
                                         scratch, resid)
              : rule2_would_unmark(g, marked, key, form, v, scratch);
      if (fires) next.reset(i);
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

DynBitset simultaneous_rule1_pass(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked) {
  DynBitset next;
  simultaneous_rule1_pass_into(g, key, marked, nullptr, next);
  return next;
}

DynBitset simultaneous_rule2_pass(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked) {
  DynBitset next;
  simultaneous_rule2_pass_into(g, key, form, marked, ExecContext{}, next);
  return next;
}

namespace {

void apply_sequential(const Graph& g, const PriorityKey& key,
                      const RuleConfig& config, bool verified,
                      DynBitset& marked) {
  const auto order = key.ascending_order();
  std::vector<NodeId> scratch;
  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool changed = false;
    for (const NodeId v : order) {
      if (!marked.test(static_cast<std::size_t>(v))) continue;
      const bool fires =
          (config.use_rule1 && rule1_would_unmark(g, marked, key, v)) ||
          (config.use_rule2 &&
           rule2_would_unmark(g, marked, key, config.rule2_form, v, scratch));
      if (!fires) continue;
      if (verified && !removal_is_safe(g, marked, v)) continue;
      marked.reset(static_cast<std::size_t>(v));
      changed = true;
    }
    if (!changed) break;
  }
}

}  // namespace

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, const ExecContext& ctx,
                 DynBitset& marked) {
  switch (config.strategy) {
    case Strategy::kSimultaneous: {
      CdsWorkspace local;
      CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
      ExecContext pass_ctx = ctx;
      pass_ctx.workspace = &ws;
      // Stage double-buffering: build the next mark set in ws.stage, then
      // swap buffers — no per-pass bitset allocation once ws is warm.
      if (config.use_rule1) {
        simultaneous_rule1_pass_into(g, key, marked, pass_ctx, ws.stage);
        std::swap(marked, ws.stage);
      }
      if (config.use_rule2) {
        simultaneous_rule2_pass_into(g, key, config.rule2_form, marked,
                                     pass_ctx, ws.stage);
        std::swap(marked, ws.stage);
      }
      return;
    }
    case Strategy::kSequential:
      apply_sequential(g, key, config, /*verified=*/false, marked);
      return;
    case Strategy::kVerified:
      apply_sequential(g, key, config, /*verified=*/true, marked);
      return;
  }
}

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, DynBitset& marked) {
  apply_rules(g, key, config, ExecContext{}, marked);
}

}  // namespace pacds
