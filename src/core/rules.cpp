#include "core/rules.hpp"

#include <bit>
#include <vector>

#include "core/verify.hpp"

namespace pacds {

std::string to_string(Rule2Form form) {
  switch (form) {
    case Rule2Form::kSimple:
      return "simple";
    case Rule2Form::kRefined:
      return "refined";
  }
  return "?";
}

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSimultaneous:
      return "simultaneous";
    case Strategy::kSequential:
      return "sequential";
    case Strategy::kVerified:
      return "verified";
  }
  return "?";
}

bool rule1_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, NodeId v) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  for (const NodeId u : g.neighbors(v)) {
    if (!marked.test(static_cast<std::size_t>(u))) continue;
    if (key.less(v, u) && g.closed_covered_by(v, u)) return true;
  }
  return false;
}

namespace {

/// Collects the currently-marked neighbors of v into `out` (reused buffer).
void marked_neighbors(const Graph& g, const DynBitset& marked, NodeId v,
                      std::vector<NodeId>& out) {
  out.clear();
  for (const NodeId u : g.neighbors(v)) {
    if (marked.test(static_cast<std::size_t>(u))) out.push_back(u);
  }
}

/// Dense-row variant: N(v) ∧ marked word by word, iterating set bits. Same
/// candidate SET as marked_neighbors, in ascending id order — the pair
/// decision is existential over unordered pairs, so order is immaterial.
void marked_neighbors_dense(const DynBitset& row, const DynBitset& marked,
                            std::vector<NodeId>& out) {
  out.clear();
  const auto& rw = row.words();
  const auto& mw = marked.words();
  const std::size_t n = std::min(rw.size(), mw.size());
  for (std::size_t i = 0; i < n; ++i) {
    simd::Word w = rw[i] & mw[i];
    while (w != 0) {
      out.push_back(static_cast<NodeId>(
          i * 64 + static_cast<std::size_t>(std::countr_zero(w))));
      w &= w - 1;
    }
  }
}

// ---- Dense fast path -----------------------------------------------------
// With cached DynBitset rows available (DenseAdjacency, small n), the pair
// loop runs through the blocked engine (rule2_blocked.hpp): residuals
// N(v) \ N(u) are built once per candidate in L1-sized blocks and every
// coverage row is streamed once per block instead of once per pair, with
// all word traffic going through the simd kernel layer. On unit-disk
// instances most candidate pairs still die on the popcount-vs-degree gate
// or the first residual word.

/// Dense-row twin of rule1_would_unmark (v already known marked). With
/// u ∈ N(v), N[v] ⊆ N[u] reduces to N(v) \ {u} ⊆ N(u).
bool rule1_dense_would_unmark(const Graph& g, const DenseAdjacency& dense,
                              const DynBitset& marked, const PriorityKey& key,
                              NodeId v) {
  const DynBitset& rv = dense.row(v);
  for (const NodeId u : g.neighbors(v)) {
    if (!marked.test(static_cast<std::size_t>(u))) continue;
    if (key.less(v, u) &&
        rv.is_subset_of_except(dense.row(u), static_cast<std::size_t>(u))) {
      return true;
    }
  }
  return false;
}

/// Blocked-engine geometry over the dense full-graph rows: candidates are
/// the marked neighbors of v (global ids in `scratch`).
struct DenseRule2Env {
  const Graph& g;
  const DenseAdjacency& dense;
  const PriorityKey& key;
  NodeId v;
  const std::vector<NodeId>& cands;

  [[nodiscard]] const simd::Word* vrow() const {
    return dense.row(v).words().data();
  }
  [[nodiscard]] const simd::Word* row(std::size_t i) const {
    return dense.row(cands[i]).words().data();
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return static_cast<std::size_t>(g.degree(cands[i]));
  }
  [[nodiscard]] bool min3(std::size_t i, std::size_t j) const {
    return key.is_min_of_three(v, cands[i], cands[j]);
  }
  [[nodiscard]] bool refined_cases(std::size_t i, std::size_t j, bool cov_u,
                                   bool cov_w) const {
    return rule2_refined_cases(key, v, cands[i], cands[j], cov_u, cov_w);
  }
};

/// Dense-row twin of rule2_{simple,refined}_would_unmark (v already known
/// marked). Decision-identical to the merge-based predicates: the pair
/// decision is existential, and each pair sees the same coverage tests and
/// refined case analysis.
bool rule2_dense_would_unmark(const Graph& g, const DenseAdjacency& dense,
                              const DynBitset& marked, const PriorityKey& key,
                              Rule2Form form, NodeId v,
                              std::vector<NodeId>& scratch,
                              CdsWorkspace::Rule2Lane& lane) {
  marked_neighbors_dense(dense.row(v), marked, scratch);
  if (scratch.size() < 2) return false;
  const DenseRule2Env env{g, dense, key, v, scratch};
  return rule2_blocked_fires(env, scratch.size(),
                             dense.row(v).words().size(),
                             form == Rule2Form::kSimple, lane);
}

/// Syncs the workspace dense cache against `g` and returns it when usable.
const DenseAdjacency* synced_dense(const ExecContext& ctx, const Graph& g) {
  if (ctx.workspace == nullptr) return nullptr;
  return ctx.workspace->dense.sync(g) ? &ctx.workspace->dense : nullptr;
}

}  // namespace

/// Case 1: neither competitor covered -> v yields unconditionally.
/// Case 2: exactly one covered        -> v yields iff it loses to that one.
/// Case 3: both covered               -> v yields iff strict key-min.
bool rule2_refined_cases(const PriorityKey& key, NodeId v, NodeId u, NodeId w,
                         bool cov_u, bool cov_w) {
  if (!cov_u && !cov_w) return true;
  if (cov_u && !cov_w) return key.less(v, u);
  if (cov_w && !cov_u) return key.less(v, w);
  return key.less(v, u) && key.less(v, w);
}

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v,
                               std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!key.is_min_of_three(v, u, w)) continue;
      if (g.open_covered_by_pair(v, u, w)) return true;
    }
  }
  return false;
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v,
                                std::vector<NodeId>& scratch) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  marked_neighbors(g, marked, v, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    for (std::size_t j = i + 1; j < scratch.size(); ++j) {
      const NodeId u = scratch[i];
      const NodeId w = scratch[j];
      if (!g.open_covered_by_pair(v, u, w)) continue;
      const bool cov_u = g.open_covered_by_pair(u, v, w);
      const bool cov_w = g.open_covered_by_pair(w, u, v);
      if (rule2_refined_cases(key, v, u, w, cov_u, cov_w)) return true;
    }
  }
  return false;
}

bool rule2_simple_would_unmark(const Graph& g, const DynBitset& marked,
                               const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_simple_would_unmark(g, marked, key, v, scratch);
}

bool rule2_refined_would_unmark(const Graph& g, const DynBitset& marked,
                                const PriorityKey& key, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v,
                        std::vector<NodeId>& scratch) {
  return form == Rule2Form::kSimple
             ? rule2_simple_would_unmark(g, marked, key, v, scratch)
             : rule2_refined_would_unmark(g, marked, key, v, scratch);
}

bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                        const PriorityKey& key, Rule2Form form, NodeId v) {
  std::vector<NodeId> scratch;
  return rule2_would_unmark(g, marked, key, form, v, scratch);
}

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const DenseAdjacency* dense = synced_dense(ctx, g);
  auto body = [&](std::size_t begin, std::size_t end, std::size_t /*lane*/) {
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool fires =
          dense != nullptr ? rule1_dense_would_unmark(g, *dense, marked, key, v)
                           : rule1_would_unmark(g, marked, key, v);
      if (fires) next.reset(i);
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked, Executor* exec,
                                  DynBitset& next) {
  ExecContext ctx;
  ctx.executor = exec;
  simultaneous_rule1_pass_into(g, key, marked, ctx, next);
}

void simultaneous_rule2_pass_into(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const std::size_t lanes = ctx.lanes();
  CdsWorkspace local;
  CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
  if (ws.lane_neighbors.size() < lanes) ws.lane_neighbors.resize(lanes);
  if (ws.lane_residuals.size() < lanes) ws.lane_residuals.resize(lanes);
  const DenseAdjacency* dense =
      ws.dense.sync(g) ? &ws.dense : nullptr;
  auto body = [&](std::size_t begin, std::size_t end, std::size_t lane) {
    std::vector<NodeId>& scratch = ws.lane_neighbors[lane];
    CdsWorkspace::Rule2Lane& resid = ws.lane_residuals[lane];
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool fires =
          dense != nullptr
              ? rule2_dense_would_unmark(g, *dense, marked, key, form, v,
                                         scratch, resid)
              : rule2_would_unmark(g, marked, key, form, v, scratch);
      if (fires) next.reset(i);
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

namespace {

/// Workspace for the convenience (context-free) pass entry points. Without
/// it every call would rebuild the version-keyed dense row cache from
/// scratch, defeating its "repeated passes over an unchanged graph pay the
/// build exactly once" contract; a thread-local keeps the wrappers pure
/// while letting back-to-back passes hit the cache.
CdsWorkspace& convenience_workspace() {
  static thread_local CdsWorkspace ws;
  return ws;
}

}  // namespace

DynBitset simultaneous_rule1_pass(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked) {
  DynBitset next;
  ExecContext ctx;
  ctx.workspace = &convenience_workspace();
  simultaneous_rule1_pass_into(g, key, marked, ctx, next);
  return next;
}

DynBitset simultaneous_rule2_pass(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked) {
  DynBitset next;
  ExecContext ctx;
  ctx.workspace = &convenience_workspace();
  simultaneous_rule2_pass_into(g, key, form, marked, ctx, next);
  return next;
}

namespace {

void apply_sequential(const Graph& g, const PriorityKey& key,
                      const RuleConfig& config, bool verified,
                      DynBitset& marked) {
  const auto order = key.ascending_order();
  std::vector<NodeId> scratch;
  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool changed = false;
    for (const NodeId v : order) {
      if (!marked.test(static_cast<std::size_t>(v))) continue;
      const bool fires =
          (config.use_rule1 && rule1_would_unmark(g, marked, key, v)) ||
          (config.use_rule2 &&
           rule2_would_unmark(g, marked, key, config.rule2_form, v, scratch));
      if (!fires) continue;
      if (verified && !removal_is_safe(g, marked, v)) continue;
      marked.reset(static_cast<std::size_t>(v));
      changed = true;
    }
    if (!changed) break;
  }
}

}  // namespace

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, const ExecContext& ctx,
                 DynBitset& marked) {
  switch (config.strategy) {
    case Strategy::kSimultaneous: {
      CdsWorkspace local;
      CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
      ExecContext pass_ctx = ctx;
      pass_ctx.workspace = &ws;
      // Stage double-buffering: build the next mark set in ws.stage, then
      // swap buffers — no per-pass bitset allocation once ws is warm.
      if (config.use_rule1) {
        simultaneous_rule1_pass_into(g, key, marked, pass_ctx, ws.stage);
        std::swap(marked, ws.stage);
      }
      if (config.use_rule2) {
        simultaneous_rule2_pass_into(g, key, config.rule2_form, marked,
                                     pass_ctx, ws.stage);
        std::swap(marked, ws.stage);
      }
      return;
    }
    case Strategy::kSequential:
      apply_sequential(g, key, config, /*verified=*/false, marked);
      return;
    case Strategy::kVerified:
      apply_sequential(g, key, config, /*verified=*/true, marked);
      return;
  }
}

void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, DynBitset& marked) {
  apply_rules(g, key, config, ExecContext{}, marked);
}

}  // namespace pacds
