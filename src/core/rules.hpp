#pragma once
// The selective-removal rules (paper Sections 2.2 and 3). A marked node
// unmarks itself when its neighborhood is covered by one (Rule 1) or two
// connected (Rule 2) *marked* neighbors and it loses the priority
// comparison. The four families (ID / ND / EL1 / EL2) are obtained by
// plugging the corresponding PriorityKey into the generic rules:
//
//   Rule 1 (all families): N[v] ⊆ N[u], u marked, key(v) < key(u).
//   Rule 2, simple form (ID family, paper Rule 2):
//       N(v) ⊆ N(u) ∪ N(w), u,w marked neighbors, key(v) = min of three.
//   Rule 2, refined form (a/b/b' families, paper Rules 2a/2b/2b'):
//       three-way case analysis on which of {v,u,w} are covered by the
//       other two; only covered nodes compete, and v yields iff it loses
//       the key comparison against every *covered* competitor.
//
// The paper's case enumeration is asymmetric in u and w (its case 2 assumes
// the covered competitor is u); we evaluate both orderings of the pair,
// which is exactly what a distributed node iterating over all its
// marked-neighbor pairs would do, and matches the paper's worked example.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/marking.hpp"
#include "core/workspace.hpp"

namespace pacds {

/// Which formulation of Rule 2 to apply.
enum class Rule2Form : std::uint8_t {
  kSimple,   ///< paper Rule 2: unmark iff key-min of the covered triple
  kRefined,  ///< paper Rules 2a/2b/2b': coverage-symmetry case analysis
};

/// How rule decisions are committed.
enum class Strategy : std::uint8_t {
  /// Synchronous distributed semantics: one simultaneous Rule 1 pass
  /// evaluated against the marking-process output, then one simultaneous
  /// Rule 2 pass evaluated against the post-Rule-1 marks. NOTE: with the
  /// refined Rule 2 as published, simultaneous commits are NOT always safe —
  /// two nodes can each be removed relying on the other as cover (measured
  /// at roughly 30% of dense random unit-disk instances by
  /// bench/ablation_strategies; Dai & Wu 2004 later added the missing
  /// priority guard). Provided for fidelity studies.
  kSimultaneous,
  /// Asynchronous distributed semantics and the library default: nodes
  /// yield one at a time in ascending key order (removals take effect
  /// immediately, sweeps repeat to a fixpoint). Each single removal is
  /// covered by the paper's G' - {v} correctness argument, so the result is
  /// always a valid CDS.
  kSequential,
  /// kSequential plus a per-removal safety check: a node is only unmarked
  /// if the remaining set still dominates and stays connected inside its
  /// component. Guaranteed-valid output even where the raw rules are not.
  kVerified,
};

[[nodiscard]] std::string to_string(Rule2Form form);
[[nodiscard]] std::string to_string(Strategy strategy);

/// Full rule-application configuration.
struct RuleConfig {
  bool use_rule1 = true;
  bool use_rule2 = true;
  Rule2Form rule2_form = Rule2Form::kRefined;
  Strategy strategy = Strategy::kSequential;
  /// Bound on sequential fixpoint sweeps (safety net; convergence is
  /// normally immediate).
  int max_sweeps = 64;
};

// ---- Single-node decisions (distributed view) ---------------------------
// Each predicate answers: "given the current marks, would node v unmark
// itself by this rule?" They are the building blocks of every strategy and
// are exposed for tests and for the incremental/localized updater.

[[nodiscard]] bool rule1_would_unmark(const Graph& g, const DynBitset& marked,
                                      const PriorityKey& key, NodeId v);

/// The refined Rule 2 case analysis for one ordered pair (u, w) of marked
/// neighbors covering v (cov_u: N(u) ⊆ N(v) ∪ N(w), cov_w symmetric).
/// Exposed so the tiled kernels share the exact decision table.
[[nodiscard]] bool rule2_refined_cases(const PriorityKey& key, NodeId v,
                                       NodeId u, NodeId w, bool cov_u,
                                       bool cov_w);

[[nodiscard]] bool rule2_simple_would_unmark(const Graph& g,
                                             const DynBitset& marked,
                                             const PriorityKey& key, NodeId v);

[[nodiscard]] bool rule2_refined_would_unmark(const Graph& g,
                                              const DynBitset& marked,
                                              const PriorityKey& key,
                                              NodeId v);

[[nodiscard]] bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                                      const PriorityKey& key, Rule2Form form,
                                      NodeId v);

// Scratch-buffer variants for hot loops: `scratch` receives v's marked
// neighbors (contents clobbered), so per-node evaluation allocates nothing.
// The plain overloads above delegate here with a local buffer.

[[nodiscard]] bool rule2_simple_would_unmark(const Graph& g,
                                             const DynBitset& marked,
                                             const PriorityKey& key, NodeId v,
                                             std::vector<NodeId>& scratch);

[[nodiscard]] bool rule2_refined_would_unmark(const Graph& g,
                                              const DynBitset& marked,
                                              const PriorityKey& key, NodeId v,
                                              std::vector<NodeId>& scratch);

[[nodiscard]] bool rule2_would_unmark(const Graph& g, const DynBitset& marked,
                                      const PriorityKey& key, Rule2Form form,
                                      NodeId v, std::vector<NodeId>& scratch);

// ---- Whole-graph passes --------------------------------------------------

/// One simultaneous Rule 1 pass: decisions are evaluated against `marked`
/// and committed together. Returns the new mark set.
[[nodiscard]] DynBitset simultaneous_rule1_pass(const Graph& g,
                                                const PriorityKey& key,
                                                const DynBitset& marked);

/// One simultaneous Rule 2 pass (either form).
[[nodiscard]] DynBitset simultaneous_rule2_pass(const Graph& g,
                                                const PriorityKey& key,
                                                Rule2Form form,
                                                const DynBitset& marked);

// Sharded/in-place variants. Every decision is evaluated against the frozen
// input `marked`, so the node range can be split across executor workers and
// the committed result is bit-identical to the serial pass for any thread
// count (shards only clear bits inside their own word-aligned range of
// `next`). `next` receives the new mark set; reusing a warm buffer makes the
// pass allocation-free.

void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked, Executor* exec,
                                  DynBitset& next);

/// As above with a full context: when `ctx.workspace` carries an active
/// DenseAdjacency (small n), coverage runs word-parallel on cached rows.
void simultaneous_rule1_pass_into(const Graph& g, const PriorityKey& key,
                                  const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next);

/// Rule 2 needs a marked-neighbor buffer per concurrently running shard;
/// `ctx.workspace` provides them keyed by executor lane (function-local
/// buffers when null).
void simultaneous_rule2_pass_into(const Graph& g, const PriorityKey& key,
                                  Rule2Form form, const DynBitset& marked,
                                  const ExecContext& ctx, DynBitset& next);

/// Applies the configured rules to `marked` in place.
void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, DynBitset& marked);

/// As above, with explicit execution context. Only the simultaneous strategy
/// shards across `ctx.executor` (its per-node decisions read frozen inputs);
/// the sequential/verified strategies cascade removals immediately and
/// therefore always run serially, executor or not — same results either way.
void apply_rules(const Graph& g, const PriorityKey& key,
                 const RuleConfig& config, const ExecContext& ctx,
                 DynBitset& marked);

}  // namespace pacds
