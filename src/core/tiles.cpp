#include "core/tiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rules.hpp"

namespace pacds {

void TileGrid::reset(double width, double height, double radius, int requested,
                     std::size_t n_hosts) {
  radius_ = radius > 0.0 ? radius : 1.0;
  const double min_side = 2.0 * radius_;
  const int max_x = std::max(1, static_cast<int>(std::floor(width / min_side)));
  const int max_y =
      std::max(1, static_cast<int>(std::floor(height / min_side)));
  if (requested <= 0) {
    // Auto: the finest grid the halo constraint allows.
    tiles_x_ = max_x;
    tiles_y_ = max_y;
  } else {
    const auto per_axis = static_cast<int>(
        std::floor(std::sqrt(static_cast<double>(requested))));
    tiles_x_ = std::clamp(per_axis, 1, max_x);
    tiles_y_ = std::clamp(per_axis, 1, max_y);
  }
  side_x_ = width > 0.0 ? width / tiles_x_ : 1.0;
  side_y_ = height > 0.0 ? height / tiles_y_ : 1.0;
  const auto count = static_cast<std::size_t>(tile_count());
  if (owned_.size() != count) owned_.resize(count);
  for (auto& list : owned_) list.clear();
  for (auto& list : owned_) {
    list.reserve(n_hosts / count + 1);
  }
}

int TileGrid::tile_of(Vec2 p) const noexcept {
  const int ix = std::clamp(
      static_cast<int>(std::floor(p.x / side_x_)), 0, tiles_x_ - 1);
  const int iy = std::clamp(
      static_cast<int>(std::floor(p.y / side_y_)), 0, tiles_y_ - 1);
  return iy * tiles_x_ + ix;
}

double TileGrid::dist_to_rect(int t, Vec2 p) const noexcept {
  const int ix = t % tiles_x_;
  const int iy = t / tiles_x_;
  const double x0 = static_cast<double>(ix) * side_x_;
  const double y0 = static_cast<double>(iy) * side_y_;
  const double dx =
      p.x < x0 ? x0 - p.x : (p.x > x0 + side_x_ ? p.x - (x0 + side_x_) : 0.0);
  const double dy =
      p.y < y0 ? y0 - p.y : (p.y > y0 + side_y_ ? p.y - (y0 + side_y_) : 0.0);
  return std::sqrt(dx * dx + dy * dy);
}

void TileGrid::assign_all(const std::vector<Vec2>& positions) {
  for (auto& list : owned_) list.clear();
  // Host ids ascend, so each list comes out sorted.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    owned_[static_cast<std::size_t>(tile_of(positions[i]))].push_back(
        static_cast<NodeId>(i));
  }
}

void TileGrid::move_host(NodeId v, Vec2 old_pos, Vec2 new_pos) {
  const int from = tile_of(old_pos);
  const int to = tile_of(new_pos);
  if (from == to) return;
  auto& src = owned_[static_cast<std::size_t>(from)];
  const auto it = std::lower_bound(src.begin(), src.end(), v);
  if (it == src.end() || *it != v) {
    throw std::logic_error("TileGrid::move_host: stale old position");
  }
  src.erase(it);
  auto& dst = owned_[static_cast<std::size_t>(to)];
  dst.insert(std::lower_bound(dst.begin(), dst.end(), v), v);
}

void TileGrid::mark_dirty_around(Vec2 p, double dist, DynBitset& dirty) const {
  const int ix0 = std::clamp(
      static_cast<int>(std::floor((p.x - dist) / side_x_)), 0, tiles_x_ - 1);
  const int ix1 = std::clamp(
      static_cast<int>(std::floor((p.x + dist) / side_x_)), 0, tiles_x_ - 1);
  const int iy0 = std::clamp(
      static_cast<int>(std::floor((p.y - dist) / side_y_)), 0, tiles_y_ - 1);
  const int iy1 = std::clamp(
      static_cast<int>(std::floor((p.y + dist) / side_y_)), 0, tiles_y_ - 1);
  for (int iy = iy0; iy <= iy1; ++iy) {
    for (int ix = ix0; ix <= ix1; ++ix) {
      dirty.set(static_cast<std::size_t>(iy * tiles_x_ + ix));
    }
  }
}

void build_tile_local(const Graph& g, const TileGrid& grid,
                      const std::vector<Vec2>& positions, int t,
                      TileLaneScratch& lane, TileLocal& tl) {
  const double halo = 2.0 * grid.radius();
  const int tx = grid.tiles_x();
  const int ty = grid.tiles_y();
  const int ix = t % tx;
  const int iy = t / tx;
  tl.locals.clear();
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const int nx = ix + dx;
      const int ny = iy + dy;
      if (nx < 0 || nx >= tx || ny < 0 || ny >= ty) continue;
      const int nt = ny * tx + nx;
      for (const NodeId v : grid.owned(nt)) {
        if (nt == t ||
            grid.dist_to_rect(t, positions[static_cast<std::size_t>(v)]) <=
                halo) {
          tl.locals.push_back(v);
        }
      }
    }
  }
  // Tiles are disjoint, so no duplicates; sorting makes local ascending
  // order match global ascending order.
  std::sort(tl.locals.begin(), tl.locals.end());
  const std::size_t count = tl.locals.size();

  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (lane.local_of.size() < n) {
    lane.local_of.resize(n);
    lane.epoch.resize(n, 0);
  }
  const std::uint64_t e = ++lane.current_epoch;
  for (std::size_t i = 0; i < count; ++i) {
    const auto gi = static_cast<std::size_t>(tl.locals[i]);
    lane.local_of[gi] = static_cast<std::int32_t>(i);
    lane.epoch[gi] = e;
  }

  tl.is_owned.resize(count);
  if (tl.rows.size() < count) tl.rows.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    DynBitset& row = tl.rows[i];
    row.resize_clear(count);
    for (const NodeId x : g.neighbors(tl.locals[i])) {
      const auto gx = static_cast<std::size_t>(x);
      if (lane.epoch[gx] == e) {
        row.set(static_cast<std::size_t>(lane.local_of[gx]));
      }
    }
    tl.is_owned[i] = grid.tile_of(positions[static_cast<std::size_t>(
                         tl.locals[i])]) == t
                         ? 1
                         : 0;
  }
  tl.out.resize_clear(count);
}

void tile_marking_stage(TileLocal& tl) {
  const std::size_t count = tl.locals.size();
  tl.out.resize_clear(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (tl.is_owned[i] == 0) continue;
    const DynBitset& row = tl.rows[i];
    bool marks = false;
    for (std::size_t u = row.find_first(); u < count; u = row.find_next(u)) {
      if (!row.is_subset_of_except(tl.rows[u], u)) {
        marks = true;
        break;
      }
    }
    if (marks) tl.out.set(i);
  }
}

void tile_rule1_stage(const PriorityKey& key, const DynBitset& marked,
                      TileLocal& tl) {
  const std::size_t count = tl.locals.size();
  tl.out.resize_clear(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (tl.is_owned[i] == 0) continue;
    const NodeId v = tl.locals[i];
    if (!marked.test(static_cast<std::size_t>(v))) continue;
    const DynBitset& row = tl.rows[i];
    bool fires = false;
    for (std::size_t u = row.find_first(); u < count; u = row.find_next(u)) {
      const NodeId gu = tl.locals[u];
      if (!marked.test(static_cast<std::size_t>(gu))) continue;
      if (key.less(v, gu) && row.is_subset_of_except(tl.rows[u], u)) {
        fires = true;
        break;
      }
    }
    if (!fires) tl.out.set(i);
  }
}

namespace {

/// Blocked-engine geometry over one tile's local dense rows: candidates are
/// local indices (tl.scratch); keys compare global ids. Candidate rows are
/// complete (candidates sit within r of the tile rectangle — see the
/// locality contract above), so the local row popcount equals the global
/// degree and the popcount-vs-degree gate stays sound.
struct TileRule2Env {
  const TileLocal& tl;
  const PriorityKey& key;
  NodeId v;
  const DynBitset& vrow_bits;

  [[nodiscard]] const simd::Word* vrow() const {
    return vrow_bits.words().data();
  }
  [[nodiscard]] const simd::Word* row(std::size_t i) const {
    return tl.rows[tl.scratch[i]].words().data();
  }
  [[nodiscard]] std::size_t degree(std::size_t i) const {
    return tl.rows[tl.scratch[i]].count();
  }
  [[nodiscard]] bool min3(std::size_t i, std::size_t j) const {
    return key.is_min_of_three(v, tl.locals[tl.scratch[i]],
                               tl.locals[tl.scratch[j]]);
  }
  [[nodiscard]] bool refined_cases(std::size_t i, std::size_t j, bool cov_u,
                                   bool cov_w) const {
    return rule2_refined_cases(key, v, tl.locals[tl.scratch[i]],
                               tl.locals[tl.scratch[j]], cov_u, cov_w);
  }
};

}  // namespace

void tile_rule2_stage(const PriorityKey& key, bool form_simple,
                      const DynBitset& in, TileLocal& tl) {
  const std::size_t count = tl.locals.size();
  tl.out.resize_clear(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (tl.is_owned[i] == 0) continue;
    const NodeId v = tl.locals[i];
    if (!in.test(static_cast<std::size_t>(v))) continue;
    const DynBitset& row = tl.rows[i];
    tl.scratch.clear();
    for (std::size_t u = row.find_first(); u < count; u = row.find_next(u)) {
      if (in.test(static_cast<std::size_t>(tl.locals[u]))) {
        tl.scratch.push_back(static_cast<std::uint32_t>(u));
      }
    }
    // Coverage booleans are the same as the old per-pair union tests
    // (r ⊆ N(u) ∪ N(w) ⟺ r \ N(u) ⊆ N(w)), and the pair decision is
    // existential, so the blocked engine is decision-identical.
    const TileRule2Env env{tl, key, v, row};
    if (!rule2_blocked_fires(env, tl.scratch.size(), row.words().size(),
                             form_simple, tl.rule2_lane)) {
      tl.out.set(i);
    }
  }
}

void scatter_tile_out(const TileLocal& tl, DynBitset& global) {
  for (std::size_t i = 0; i < tl.locals.size(); ++i) {
    if (tl.is_owned[i] == 0) continue;
    const auto gi = static_cast<std::size_t>(tl.locals[i]);
    if (tl.out.test(i)) {
      global.set(gi);
    } else {
      global.reset(gi);
    }
  }
}

}  // namespace pacds
