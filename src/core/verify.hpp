#pragma once
// Validity checks for gateway sets: domination, connectivity of the induced
// subgraph, and the paper's Property 3 (shortest paths need no non-gateway
// interior vertex). These back the property-based tests and the kVerified
// rule-application strategy.

#include <string>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Outcome of a connected-dominating-set check.
struct CdsCheck {
  bool dominating = true;          ///< every relevant node covered
  bool induced_connected = true;   ///< marked set connected per component
  std::string message;             ///< first violation, for test diagnostics

  [[nodiscard]] bool ok() const { return dominating && induced_connected; }
};

/// Checks that `set` is a connected dominating set of `g`, component-wise:
/// within each connected component of g that contains at least one marked
/// node, every node must be in `set` or adjacent to a member, and the
/// members must induce a connected subgraph.
///
/// Components with *no* marked node fail domination unless they are complete
/// (or singletons) and `exempt_complete_components` is true — the marking
/// process legitimately leaves cliques gateway-less (paper Property 1
/// assumes a non-complete graph).
[[nodiscard]] CdsCheck check_cds(const Graph& g, const DynBitset& set,
                                 bool exempt_complete_components = true);

/// True iff removing `v` from `set` keeps check_cds passing. Used by the
/// kVerified strategy; O(component) per call.
[[nodiscard]] bool removal_is_safe(const Graph& g, const DynBitset& set,
                                   NodeId v);

/// Paper Property 3: for every pair (s, t), some shortest path in G uses
/// only gateway nodes as interior vertices; equivalently the
/// gateway-interior-restricted distance equals the true distance.
/// Holds for the raw marking-process output; generally *not* after rules.
[[nodiscard]] bool property3_holds(const Graph& g, const DynBitset& gateways);

/// Average multiplicative stretch of gateway-interior-restricted distances
/// over all connected pairs (1.0 = distances fully preserved). Pairs that
/// become unreachable count as `unreachable_penalty`.
[[nodiscard]] double average_distance_stretch(const Graph& g,
                                              const DynBitset& gateways,
                                              double unreachable_penalty = 0.0,
                                              std::size_t* unreachable_pairs =
                                                  nullptr);

}  // namespace pacds
