#include "core/verify.hpp"

#include <deque>
#include <vector>

namespace pacds {

namespace {

/// BFS over `g` restricted to nodes in `within`, starting from `start`;
/// returns how many nodes of `within` were reached.
std::size_t reachable_within(const Graph& g, const DynBitset& within,
                             NodeId start) {
  DynBitset seen(within.size());
  seen.set(static_cast<std::size_t>(start));
  std::deque<NodeId> queue{start};
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nxt : g.neighbors(cur)) {
      const auto ni = static_cast<std::size_t>(nxt);
      if (within.test(ni) && !seen.test(ni)) {
        seen.set(ni);
        ++reached;
        queue.push_back(nxt);
      }
    }
  }
  return reached;
}

}  // namespace

CdsCheck check_cds(const Graph& g, const DynBitset& set,
                   bool exempt_complete_components) {
  CdsCheck result;
  const NodeId n = g.num_nodes();
  if (set.size() != static_cast<std::size_t>(n)) {
    result.dominating = false;
    result.message = "mark set size does not match graph";
    return result;
  }
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(ncomp));
  for (NodeId v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  for (const auto& nodes : members) {
    NodeId first_marked = -1;
    std::size_t marked_count = 0;
    for (const NodeId v : nodes) {
      if (set.test(static_cast<std::size_t>(v))) {
        ++marked_count;
        if (first_marked < 0) first_marked = v;
      }
    }
    if (marked_count == 0) {
      // Components are maximal, so "complete" means every member's degree is
      // exactly |component| - 1.
      bool complete = true;
      for (const NodeId v : nodes) {
        if (static_cast<std::size_t>(g.degree(v)) != nodes.size() - 1) {
          complete = false;
          break;
        }
      }
      if (!(exempt_complete_components && complete)) {
        result.dominating = false;
        result.message = "component containing node " +
                         std::to_string(nodes.front()) +
                         " has no gateway and is not an exempt clique";
        return result;
      }
      continue;
    }
    for (const NodeId v : nodes) {
      if (set.test(static_cast<std::size_t>(v))) continue;
      bool covered = false;
      for (const NodeId u : g.neighbors(v)) {
        if (set.test(static_cast<std::size_t>(u))) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        result.dominating = false;
        result.message =
            "node " + std::to_string(v) + " is not dominated by the set";
        return result;
      }
    }
    if (reachable_within(g, set, first_marked) != marked_count) {
      result.induced_connected = false;
      result.message = "gateway subgraph disconnected in component of node " +
                       std::to_string(nodes.front());
      return result;
    }
  }
  return result;
}

bool removal_is_safe(const Graph& g, const DynBitset& set, NodeId v) {
  const auto vi = static_cast<std::size_t>(v);
  if (!set.test(vi)) return true;  // nothing to remove
  DynBitset candidate = set;
  candidate.reset(vi);

  const DynBitset comp = g.component_of(v);
  NodeId first_marked = -1;
  std::size_t marked_count = 0;
  comp.for_each_set([&](std::size_t i) {
    if (candidate.test(i)) {
      ++marked_count;
      if (first_marked < 0) first_marked = static_cast<NodeId>(i);
    }
  });
  if (marked_count == 0) {
    // Removing the last gateway of a multi-node component is never safe.
    return comp.count() <= 1;
  }
  bool dominated = true;
  comp.for_each_set([&](std::size_t i) {
    if (!dominated || candidate.test(i)) return;
    bool covered = false;
    for (const NodeId u : g.neighbors(static_cast<NodeId>(i))) {
      if (candidate.test(static_cast<std::size_t>(u))) {
        covered = true;
        break;
      }
    }
    if (!covered) dominated = false;
  });
  if (!dominated) return false;
  return reachable_within(g, candidate, first_marked) == marked_count;
}

bool property3_holds(const Graph& g, const DynBitset& gateways) {
  const NodeId n = g.num_nodes();
  for (NodeId s = 0; s < n; ++s) {
    const auto full = g.bfs_distances(s);
    const auto restricted = g.bfs_distances(s, &gateways);
    for (NodeId t = 0; t < n; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (full[ti] >= 0 && restricted[ti] != full[ti]) return false;
    }
  }
  return true;
}

double average_distance_stretch(const Graph& g, const DynBitset& gateways,
                                double unreachable_penalty,
                                std::size_t* unreachable_pairs) {
  const NodeId n = g.num_nodes();
  double sum = 0.0;
  std::size_t pairs = 0;
  std::size_t unreachable = 0;
  for (NodeId s = 0; s < n; ++s) {
    const auto full = g.bfs_distances(s);
    const auto restricted = g.bfs_distances(s, &gateways);
    for (NodeId t = static_cast<NodeId>(s + 1); t < n; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      if (full[ti] <= 0) continue;  // unreachable in G, or s == t
      if (restricted[ti] < 0) {
        ++unreachable;
        if (unreachable_penalty > 0.0) {
          sum += unreachable_penalty;
          ++pairs;
        }
        continue;
      }
      sum += static_cast<double>(restricted[ti]) / static_cast<double>(full[ti]);
      ++pairs;
    }
  }
  if (unreachable_pairs != nullptr) *unreachable_pairs = unreachable;
  return pairs == 0 ? 1.0 : sum / static_cast<double>(pairs);
}

}  // namespace pacds
