#pragma once
// Wu & Li's marking process (paper Section 2.2): every node with two
// neighbors that are not directly connected marks itself a gateway. The
// marked set V' is a connected dominating set of every non-complete
// connected component (Properties 1-3 of the paper).

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/parallel.hpp"
#include "core/workspace.hpp"

namespace pacds {

/// Runs the marking process on the whole graph and returns the marked set.
///
/// A node v is marked iff ∃ u, w ∈ N(v), u ≠ w, {u, w} ∉ E. Complete
/// components (including isolated vertices and K2) therefore contribute no
/// marked nodes — see `CliquePolicy` in rules.hpp for the routing-level
/// fallback.
[[nodiscard]] DynBitset marking_process(const Graph& g);

/// Allocation-conscious variant: resizes/clears `marked` and fills it with
/// the marking-process output, sharding the node range across `exec` when
/// non-null. Each node's decision reads only the graph, so the result is
/// bit-identical to the serial pass for every executor (shards write
/// disjoint 64-bit words of `marked`).
void marking_process_into(const Graph& g, Executor* exec, DynBitset& marked);

/// As above with a full execution context: when `ctx.workspace` is present
/// and the graph is small enough, the pass runs against the workspace's
/// DenseAdjacency rows (word-parallel subset tests) instead of CSR merge
/// scans — bit-identical either way.
void marking_process_into(const Graph& g, const ExecContext& ctx,
                          DynBitset& marked);

/// Marking decision for a single node (the distributed per-node step; each
/// host needs only its 2-hop neighborhood, i.e. the N(u) lists its
/// neighbors exchanged).
[[nodiscard]] bool marks_itself(const Graph& g, NodeId v);

/// What to do with complete components, which the marking process leaves
/// without any gateway.
enum class CliquePolicy : std::uint8_t {
  kNone,         ///< paper-faithful: complete components get no gateway
  kElectMaxKey,  ///< elect the highest-priority node of each complete
                 ///< component as its gateway (routing-friendly)
};

/// Applies `policy` to the marked set: for kElectMaxKey, each connected
/// component with no marked node (necessarily complete, or a singleton)
/// of size >= 2 gets its key-maximum node marked. Singletons stay unmarked
/// (they have nobody to route for).
void apply_clique_policy(const Graph& g, const PriorityKey& key,
                         CliquePolicy policy, DynBitset& marked);

}  // namespace pacds
