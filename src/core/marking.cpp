#include "core/marking.hpp"

#include <vector>

namespace pacds {

bool marks_itself(const Graph& g, NodeId v) {
  // v marks itself iff some pair of its neighbors is non-adjacent, i.e.
  // some neighbor u fails to cover the rest of N(v): N(v) ⊄ N[u].
  // One sorted-merge coverage scan per neighbor, early-exiting on the first
  // witness pair.
  for (const NodeId u : g.neighbors(v)) {
    if (!g.open_covered_by_closed(v, u)) return true;
  }
  return false;
}

namespace {

/// Dense-row twin of marks_itself: same decision, word-parallel subset
/// tests against the cached rows.
bool marks_itself_dense(const Graph& g, const DenseAdjacency& dense,
                        NodeId v) {
  const DynBitset& nv = dense.row(v);
  for (const NodeId u : g.neighbors(v)) {
    if (!nv.is_subset_of_except(dense.row(u), static_cast<std::size_t>(u))) {
      return true;
    }
  }
  return false;
}

}  // namespace

void marking_process_into(const Graph& g, const ExecContext& ctx,
                          DynBitset& marked) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  marked.resize_clear(n);
  const DenseAdjacency* dense =
      ctx.workspace != nullptr && ctx.workspace->dense.sync(g)
          ? &ctx.workspace->dense
          : nullptr;
  auto body = [&g, &marked, dense](std::size_t begin, std::size_t end,
                                   std::size_t /*lane*/) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto v = static_cast<NodeId>(i);
      const bool m =
          dense != nullptr ? marks_itself_dense(g, *dense, v) : marks_itself(g, v);
      if (m) marked.set(i);
    }
  };
  run_sharded(ctx.executor, n, DynBitset::kWordBits, body);
}

void marking_process_into(const Graph& g, Executor* exec, DynBitset& marked) {
  ExecContext ctx;
  ctx.executor = exec;
  marking_process_into(g, ctx, marked);
}

DynBitset marking_process(const Graph& g) {
  DynBitset marked;
  marking_process_into(g, nullptr, marked);
  return marked;
}

void apply_clique_policy(const Graph& g, const PriorityKey& key,
                         CliquePolicy policy, DynBitset& marked) {
  if (policy == CliquePolicy::kNone) return;
  const auto comp = g.components();
  const NodeId ncomp = g.num_components();
  // Track, per component, whether any node is marked and its key-max node.
  std::vector<char> has_marked(static_cast<std::size_t>(ncomp), 0);
  std::vector<NodeId> best(static_cast<std::size_t>(ncomp), -1);
  std::vector<NodeId> size(static_cast<std::size_t>(ncomp), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto c = static_cast<std::size_t>(comp[static_cast<std::size_t>(v)]);
    ++size[c];
    if (marked.test(static_cast<std::size_t>(v))) has_marked[c] = 1;
    if (best[c] < 0 || key.less(best[c], v)) best[c] = v;
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(ncomp); ++c) {
    if (!has_marked[c] && size[c] >= 2) {
      marked.set(static_cast<std::size_t>(best[c]));
    }
  }
}

}  // namespace pacds
