#pragma once
// Per-host link-stability prediction for the SEL priority key: each host's
// neighborhood churn (link endpoints gained or lost this interval) feeds a
// first-order EWMA, and the quantized EWMA is the "instability" half of the
// (stability, energy, id) key. The tracker is engine-agnostic on purpose:
// the full-rebuild engine counts churn by diffing consecutive adjacency
// lists while the incremental/tiled engines count the endpoints of their
// exact edge deltas — both produce the same integer counts (the delta IS
// the symmetric difference of the two link sets), so the EWMA arithmetic,
// and therefore the CDS, stays bit-identical across engines.

#include <cstddef>
#include <vector>

#include "core/graph.hpp"

namespace pacds {

class StabilityTracker {
 public:
  /// `beta` is the EWMA memory (0 = only the latest interval counts,
  /// 1 = frozen); `quantum` buckets the EWMA for key comparison just like
  /// energy_key_quantum buckets battery levels (<= 0 = raw EWMA values).
  StabilityTracker(std::size_t n, double beta, double quantum);

  /// Records that `node` gained or lost one link endpoint this interval.
  void count(NodeId node) {
    counts_[static_cast<std::size_t>(node)] += 1.0;
  }

  /// Folds the interval's counts into the EWMA and resets them. Call
  /// exactly once per interval, after every link change was counted.
  void commit();

  /// Quantized per-host churn estimates for PriorityKey / compute_cds.
  /// Valid until the next commit(); all zeros before the first one.
  [[nodiscard]] const std::vector<double>& stability() const {
    return quantized_;
  }

  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] double quantum() const noexcept { return quantum_; }

 private:
  double beta_;
  double quantum_;
  std::vector<double> counts_;     ///< this interval's raw endpoint counts
  std::vector<double> ewma_;       ///< committed churn estimate
  std::vector<double> quantized_;  ///< floor(ewma / quantum) buckets
};

}  // namespace pacds
