#pragma once
// Undirected simple graph substrate used to model an ad hoc wireless network:
// vertices are mobile hosts, an edge {u, v} means u and v are inside each
// other's transmission range (the paper's unit-disk model, Section 1).
//
// Storage is a structure-of-arrays CSR arena: one shared neighbor array
// (`arena_`) holding every vertex's sorted adjacency slice, plus per-vertex
// (begin, capacity, degree) columns. Slices carry slack so edge churn stays
// in place; a slice that outgrows its capacity is relocated to the end of
// the arena with doubled capacity (the abandoned slot is dead space, bounded
// by the geometric growth to less than the live allocation, so the arena is
// O(n + m) bits total — no per-vertex O(n)-bit rows anywhere). Coverage
// predicates run as sorted-merge scans over the slices; callers that want
// word-parallel tests build dense rows per tile or via DenseAdjacency, never
// globally.

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/bitset.hpp"

namespace pacds {

/// Vertex index; the paper's node "ID" is exactly this index (distinct per
/// node, totally ordered).
using NodeId = std::int32_t;

/// Undirected simple graph with a fixed vertex count.
///
/// Mutations (add_edge/remove_edge) keep the CSR slices sorted and coherent;
/// self-loops and duplicate edges are rejected/ignored respectively.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph on `n` vertices.
  explicit Graph(NodeId n);

  /// Builds a graph from an explicit edge list. Throws on out-of-range
  /// endpoints or self-loops; duplicate edges are collapsed.
  static Graph from_edges(NodeId n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return m_; }

  /// Adds undirected edge {u, v}. Returns false (no-op) if already present.
  /// Throws std::invalid_argument for self-loops or out-of-range vertices.
  bool add_edge(NodeId u, NodeId v);

  /// Removes undirected edge {u, v}. Returns false if absent.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Open neighbor set N(v) as a sorted span. Invalidated by mutations.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;

  /// Degree |N(v)| — the paper's nd(v).
  [[nodiscard]] NodeId degree(NodeId v) const;

  /// Closed neighborhood N[v] = N(v) ∪ {v} (materialized n-bit copy; for
  /// tests and cold paths — hot kernels use the merge predicates below).
  [[nodiscard]] DynBitset closed_row(NodeId v) const;

  /// True iff N[v] ⊆ N[u] — the coverage condition of Rule 1.
  [[nodiscard]] bool closed_covered_by(NodeId v, NodeId u) const;

  /// True iff N(v) ⊆ N(u) ∪ N(w) — the coverage condition of Rule 2.
  [[nodiscard]] bool open_covered_by_pair(NodeId v, NodeId u, NodeId w) const;

  /// True iff N(v) ⊆ N[u] = N(u) ∪ {u} — the marking process asks whether
  /// some neighbor u fails this (then v has two non-adjacent neighbors).
  [[nodiscard]] bool open_covered_by_closed(NodeId v, NodeId u) const;

  /// Structure stamp: globally unique per mutation event, so two Graph
  /// objects carrying the same stamp have identical adjacency (copies share
  /// the stamp until one of them mutates). Caches key on this to detect
  /// staleness without content hashing.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  // ---- Traversal / structure -------------------------------------------

  /// BFS hop distances from `src`; unreachable nodes get -1. If `allowed` is
  /// non-null, intermediate hops are restricted to nodes in `allowed`
  /// (src itself is always expanded; a target outside `allowed` still gets a
  /// distance when adjacent to an allowed/last-hop node — i.e. `allowed`
  /// constrains *interior* vertices of paths, matching gateway routing).
  [[nodiscard]] std::vector<NodeId> bfs_distances(
      NodeId src, const DynBitset* allowed = nullptr) const;

  /// Component id per node (0-based, components numbered by discovery).
  [[nodiscard]] std::vector<NodeId> components() const;

  /// Number of connected components (0 for the empty graph).
  [[nodiscard]] NodeId num_components() const;

  [[nodiscard]] bool is_connected() const;

  /// True iff every pair of distinct vertices is adjacent (K_n); vacuously
  /// true for n <= 1.
  [[nodiscard]] bool is_complete() const;

  /// Nodes of the component containing `v`, as a bitset.
  [[nodiscard]] DynBitset component_of(NodeId v) const;

  /// Induced subgraph G[keep]; `mapping` (if non-null) receives the original
  /// id of each new vertex, in order.
  [[nodiscard]] Graph induced(const DynBitset& keep,
                              std::vector<NodeId>* mapping = nullptr) const;

  /// One shortest path src→dst (inclusive), empty if unreachable. `allowed`
  /// restricts interior vertices as in bfs_distances.
  [[nodiscard]] std::vector<NodeId> shortest_path(
      NodeId src, NodeId dst, const DynBitset* allowed = nullptr) const;

  /// Longest shortest-path distance over all reachable pairs; nullopt for
  /// disconnected or empty graphs.
  [[nodiscard]] std::optional<NodeId> diameter() const;

  /// All edges (u < v), sorted lexicographically.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  bool operator==(const Graph& other) const;

 private:
  void check_node(NodeId v, const char* what) const;
  /// Sorted slice of vertex v without the bounds check.
  [[nodiscard]] std::span<const NodeId> slice(NodeId v) const noexcept {
    const auto i = static_cast<std::size_t>(v);
    return {arena_.data() + begin_[i], static_cast<std::size_t>(deg_[i])};
  }
  /// Inserts x into v's sorted slice, relocating the slice when full.
  void insert_neighbor(NodeId v, NodeId x);
  /// Removes x from v's sorted slice (must be present).
  void erase_neighbor(NodeId v, NodeId x);
  /// Moves v's slice to the arena end with capacity `new_cap`.
  void relocate(NodeId v, NodeId new_cap);
  void stamp() noexcept;

  NodeId n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::size_t> begin_;  ///< slice start offset into arena_
  std::vector<NodeId> cap_;         ///< slice capacity (slack included)
  std::vector<NodeId> deg_;         ///< live entries in the slice
  std::vector<NodeId> arena_;       ///< bump arena of all neighbor slices
  std::size_t dead_ = 0;            ///< abandoned slots from relocations
  std::uint64_t version_ = 0;
};

}  // namespace pacds
