#include "core/metrics.hpp"

#include <algorithm>

namespace pacds {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) return stats;
  stats.min = g.degree(0);
  double sum = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += static_cast<double>(d);
  }
  stats.mean = sum / static_cast<double>(n);
  stats.histogram.assign(static_cast<std::size_t>(stats.max) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++stats.histogram[static_cast<std::size_t>(g.degree(v))];
  }
  return stats;
}

double edge_density(const Graph& g) {
  const auto n = static_cast<double>(g.num_nodes());
  if (g.num_nodes() < 2) return 0.0;
  return static_cast<double>(g.num_edges()) / (n * (n - 1.0) / 2.0);
}

namespace {

/// Number of elements of sorted `tail` present in sorted `row` (two-pointer
/// merge — the CSR replacement for testing a dense row per pair).
std::size_t sorted_overlap(std::span<const NodeId> row,
                           std::span<const NodeId> tail) {
  std::size_t hits = 0;
  std::size_t j = 0;
  for (const NodeId x : tail) {
    while (j < row.size() && row[j] < x) ++j;
    if (j == row.size()) break;
    if (row[j] == x) {
      ++hits;
      ++j;
    }
  }
  return hits;
}

}  // namespace

double local_clustering(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);
  if (nbrs.size() < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    closed += sorted_overlap(g.neighbors(nbrs[i]), nbrs.subspan(i + 1));
  }
  const double pairs =
      static_cast<double>(nbrs.size()) * (static_cast<double>(nbrs.size()) - 1.0) /
      2.0;
  return static_cast<double>(closed) / pairs;
}

double average_clustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double sum = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sum += local_clustering(g, v);
  return sum / static_cast<double>(g.num_nodes());
}

std::size_t triangle_count(const Graph& g) {
  std::size_t triple_counted = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
      triple_counted += sorted_overlap(g.neighbors(nbrs[i]), nbrs.subspan(i + 1));
    }
  }
  return triple_counted / 3;  // each triangle seen from all three corners
}

}  // namespace pacds
