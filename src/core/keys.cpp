#include "core/keys.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pacds {

std::string to_string(KeyKind kind) {
  switch (kind) {
    case KeyKind::kId:
      return "ID";
    case KeyKind::kDegreeId:
      return "ND";
    case KeyKind::kEnergyId:
      return "EL1";
    case KeyKind::kEnergyDegreeId:
      return "EL2";
    case KeyKind::kStabilityEnergyId:
      return "SEL";
  }
  return "?";
}

PriorityKey::PriorityKey(KeyKind kind, const Graph& graph,
                         const std::vector<double>* energy,
                         const std::vector<double>* stability)
    : kind_(kind), graph_(&graph), energy_(energy), stability_(stability) {
  const bool needs_energy = kind == KeyKind::kEnergyId ||
                            kind == KeyKind::kEnergyDegreeId ||
                            kind == KeyKind::kStabilityEnergyId;
  if (needs_energy) {
    if (energy_ == nullptr) {
      throw std::invalid_argument(
          "PriorityKey: energy vector required for energy-based keys");
    }
    if (energy_->size() != static_cast<std::size_t>(graph.num_nodes())) {
      throw std::invalid_argument(
          "PriorityKey: energy vector size does not match node count");
    }
  }
  if (stability_ != nullptr &&
      stability_->size() != static_cast<std::size_t>(graph.num_nodes())) {
    throw std::invalid_argument(
        "PriorityKey: stability vector size does not match node count");
  }
}

double PriorityKey::energy_of(NodeId v) const {
  return (*energy_)[static_cast<std::size_t>(v)];
}

double PriorityKey::stability_of(NodeId v) const {
  // Null = no churn observed anywhere: everyone is equally stable.
  return stability_ == nullptr ? 0.0
                               : (*stability_)[static_cast<std::size_t>(v)];
}

bool PriorityKey::less(NodeId v, NodeId u) const {
  if (v == u) return false;
  switch (kind_) {
    case KeyKind::kId:
      return v < u;
    case KeyKind::kDegreeId: {
      const NodeId dv = graph_->degree(v);
      const NodeId du = graph_->degree(u);
      if (dv != du) return dv < du;
      return v < u;
    }
    case KeyKind::kEnergyId: {
      const double ev = energy_of(v);
      const double eu = energy_of(u);
      if (ev != eu) return ev < eu;
      return v < u;
    }
    case KeyKind::kEnergyDegreeId: {
      const double ev = energy_of(v);
      const double eu = energy_of(u);
      if (ev != eu) return ev < eu;
      const NodeId dv = graph_->degree(v);
      const NodeId du = graph_->degree(u);
      if (dv != du) return dv < du;
      return v < u;
    }
    case KeyKind::kStabilityEnergyId: {
      // Higher churn = less stable = lower priority (yields first).
      const double sv = stability_of(v);
      const double su = stability_of(u);
      if (sv != su) return sv > su;
      const double ev = energy_of(v);
      const double eu = energy_of(u);
      if (ev != eu) return ev < eu;
      return v < u;
    }
  }
  return false;
}

bool PriorityKey::is_min_of_three(NodeId v, NodeId u, NodeId w) const {
  return less(v, u) && less(v, w);
}

std::vector<NodeId> PriorityKey::ascending_order() const {
  std::vector<NodeId> order(static_cast<std::size_t>(graph_->num_nodes()));
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(),
            [this](NodeId a, NodeId b) { return less(a, b); });
  return order;
}

}  // namespace pacds
