#pragma once
// Top-level API: compute a (power-aware) connected dominating set of a
// network snapshot with one of the paper's five schemes, or a fully custom
// configuration. This is the entry point the simulator, examples and
// benchmarks use.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/marking.hpp"
#include "core/rules.hpp"
#include "core/workspace.hpp"

namespace pacds {

/// The five schemes compared in the paper's evaluation (Figures 10-13),
/// plus the scenario pack's stability-aware extension.
enum class RuleSet : std::uint8_t {
  kNR,   ///< marking process only, no reduction rules
  kID,   ///< Rules 1 + 2 (node-id keys) — Wu & Li
  kND,   ///< Rules 1a + 2a (degree keys)
  kEL1,  ///< Rules 1b + 2b (energy keys, id tie-break) — paper's proposal
  kEL2,  ///< Rules 1b' + 2b' (energy keys, degree then id tie-break)
  kSEL,  ///< refined rules with (stability, energy, id) keys — see KeyKind
};

/// The paper's five schemes in paper order, for sweeps ("--scheme all").
/// kSEL is deliberately not in here: the ablation harness opts into it by
/// name so paper-reproduction sweeps stay exactly the paper's five.
inline constexpr RuleSet kAllRuleSets[] = {RuleSet::kNR, RuleSet::kID,
                                           RuleSet::kND, RuleSet::kEL1,
                                           RuleSet::kEL2};

[[nodiscard]] std::string to_string(RuleSet rs);

/// True iff the scheme's priority key reads node energy levels.
[[nodiscard]] bool uses_energy(RuleSet rs);

/// True iff the scheme's priority key reads the per-node stability estimate.
[[nodiscard]] bool uses_stability(RuleSet rs);
[[nodiscard]] bool uses_stability(KeyKind kind);

/// Key kind used by a scheme (meaningless for kNR, which applies no rules;
/// returns kId there so clique election still has a total order).
[[nodiscard]] KeyKind key_kind_of(RuleSet rs);

/// Rule 2 formulation used by a scheme: kSimple for the original ID rules,
/// kRefined for the a/b/b' families.
[[nodiscard]] Rule2Form rule2_form_of(RuleSet rs);

/// Options for compute_cds beyond the scheme itself.
struct CdsOptions {
  /// kSequential is the safe default (see Strategy docs); kSimultaneous is
  /// the paper's synchronous semantics, which can violate connectivity.
  Strategy strategy = Strategy::kSequential;
  CliquePolicy clique_policy = CliquePolicy::kNone;
};

/// Result of a CDS computation.
struct CdsResult {
  DynBitset gateways;        ///< final marked set
  DynBitset marked_only;     ///< marking-process output before rules
  std::size_t marked_count = 0;   ///< |marking output|
  std::size_t gateway_count = 0;  ///< |final set|
};

/// Computes the gateway set of `g` under scheme `rs`.
///
/// `energy` must have one level per node for the energy-based schemes
/// (kEL1/kEL2); it is ignored otherwise and may be empty. With all-equal
/// levels kEL1 behaves like id-keyed refined rules and kEL2 like kND.
///
/// `ctx` selects the execution mode: with an executor, the marking process
/// and (under the simultaneous strategy) the rule passes are sharded across
/// its workers — the gateway set is bit-identical to the serial computation
/// for every thread count. A workspace makes repeated calls reuse scratch.
///
/// `stability` feeds the kSEL key (one churn estimate per node); an empty
/// vector means "all equally stable" and is the only accepted shape for the
/// other schemes.
[[nodiscard]] CdsResult compute_cds(const Graph& g, RuleSet rs,
                                    const std::vector<double>& energy = {},
                                    const CdsOptions& options = {},
                                    const ExecContext& ctx = {},
                                    const std::vector<double>& stability = {});

/// Fully custom variant: any key kind + rule configuration.
[[nodiscard]] CdsResult compute_cds_custom(
    const Graph& g, KeyKind kind, const RuleConfig& config,
    const std::vector<double>& energy = {},
    CliquePolicy clique_policy = CliquePolicy::kNone,
    const ExecContext& ctx = {}, const std::vector<double>& stability = {});

}  // namespace pacds
