#include "core/rule_k.hpp"

#include <stdexcept>
#include <vector>

namespace pacds {

bool rule_k_would_unmark(const Graph& g, const DynBitset& marked,
                         const PriorityKey& key, NodeId v,
                         const DenseAdjacency* dense) {
  if (!marked.test(static_cast<std::size_t>(v))) return false;
  // Candidate covers: marked neighbors with strictly higher priority.
  std::vector<NodeId> cands;
  for (const NodeId u : g.neighbors(v)) {
    if (marked.test(static_cast<std::size_t>(u)) && key.less(v, u)) {
      cands.push_back(u);
    }
  }
  if (cands.empty()) return false;

  const auto n = static_cast<std::size_t>(g.num_nodes());
  // Union-find over the candidate list: candidates are connected iff
  // adjacent in G (edges among N(v) are exactly what v's 2-hop info holds).
  std::vector<std::size_t> parent(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < cands.size(); ++i) {
    for (std::size_t j = i + 1; j < cands.size(); ++j) {
      const bool adjacent =
          dense != nullptr
              ? dense->row(cands[i]).test(static_cast<std::size_t>(cands[j]))
              : g.has_edge(cands[i], cands[j]);
      if (adjacent) parent[find(i)] = find(j);
    }
  }
  // Per component, union the CLOSED neighborhoods and test coverage of
  // N(v). Closed unions make the |S| = 1 case equal Rule 1 (N[v] ⊆ N[u]);
  // for |S| >= 2 they coincide with the open unions because a connected S
  // has every member inside some other member's neighborhood.
  std::vector<DynBitset> unions(cands.size());
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const std::size_t root = find(i);
    if (unions[root].size() == 0) unions[root] = DynBitset(n);
    if (dense != nullptr) {
      unions[root] |= dense->row(cands[i]);
    } else {
      for (const NodeId x : g.neighbors(cands[i])) {
        unions[root].set(static_cast<std::size_t>(x));
      }
    }
    unions[root].set(static_cast<std::size_t>(cands[i]));
  }
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (find(i) != i) continue;  // not a component root
    if (dense != nullptr) {
      if (dense->row(v).is_subset_of(unions[i])) return true;
      continue;
    }
    bool covered = true;
    for (const NodeId x : g.neighbors(v)) {
      if (!unions[i].test(static_cast<std::size_t>(x))) {
        covered = false;
        break;
      }
    }
    if (covered) return true;
  }
  return false;
}

void simultaneous_rule_k_pass_into(const Graph& g, const PriorityKey& key,
                                   const DynBitset& marked,
                                   const ExecContext& ctx, DynBitset& next) {
  next = marked;
  const DenseAdjacency* dense =
      ctx.workspace != nullptr && ctx.workspace->dense.sync(g)
          ? &ctx.workspace->dense
          : nullptr;
  auto body = [&](std::size_t begin, std::size_t end, std::size_t /*lane*/) {
    marked.for_each_set_in_range(begin, end, [&](std::size_t i) {
      if (rule_k_would_unmark(g, marked, key, static_cast<NodeId>(i), dense)) {
        next.reset(i);
      }
    });
  };
  run_sharded(ctx.executor, marked.size(), DynBitset::kWordBits, body);
}

void simultaneous_rule_k_pass_into(const Graph& g, const PriorityKey& key,
                                   const DynBitset& marked, Executor* exec,
                                   DynBitset& next) {
  ExecContext ctx;
  ctx.executor = exec;
  simultaneous_rule_k_pass_into(g, key, marked, ctx, next);
}

DynBitset simultaneous_rule_k_pass(const Graph& g, const PriorityKey& key,
                                   const DynBitset& marked) {
  DynBitset next;
  simultaneous_rule_k_pass_into(g, key, marked, nullptr, next);
  return next;
}

void apply_rule_k(const Graph& g, const PriorityKey& key, Strategy strategy,
                  const ExecContext& ctx, DynBitset& marked) {
  switch (strategy) {
    case Strategy::kSimultaneous: {
      // One pass is the distributed semantics; iterating to a fixpoint only
      // removes nodes whose covers shrank, which the safety argument also
      // permits. We run a single pass for fidelity with the distributed
      // algorithm.
      CdsWorkspace local;
      CdsWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local;
      ExecContext pass_ctx = ctx;
      pass_ctx.workspace = &ws;
      simultaneous_rule_k_pass_into(g, key, marked, pass_ctx, ws.stage);
      std::swap(marked, ws.stage);
      return;
    }
    case Strategy::kSequential:
    case Strategy::kVerified: {
      // Sequential sweeps to a fixpoint in ascending key order. Rule k
      // removals are provably safe, so kVerified needs no extra checking.
      const auto order = key.ascending_order();
      for (int sweep = 0; sweep < 64; ++sweep) {
        bool changed = false;
        for (const NodeId v : order) {
          if (!marked.test(static_cast<std::size_t>(v))) continue;
          if (rule_k_would_unmark(g, marked, key, v)) {
            marked.reset(static_cast<std::size_t>(v));
            changed = true;
          }
        }
        if (!changed) break;
      }
      return;
    }
  }
}

void apply_rule_k(const Graph& g, const PriorityKey& key, Strategy strategy,
                  DynBitset& marked) {
  apply_rule_k(g, key, strategy, ExecContext{}, marked);
}

CdsResult compute_cds_rule_k(const Graph& g, KeyKind kind,
                             const std::vector<double>& energy,
                             Strategy strategy, CliquePolicy clique_policy,
                             const ExecContext& ctx,
                             const std::vector<double>& stability) {
  const bool needs_energy = kind == KeyKind::kEnergyId ||
                            kind == KeyKind::kEnergyDegreeId ||
                            kind == KeyKind::kStabilityEnergyId;
  if (needs_energy &&
      energy.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "compute_cds_rule_k: energy-based key needs one level per node");
  }
  if (!stability.empty() &&
      stability.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "compute_cds_rule_k: stability vector needs one estimate per node");
  }
  const PriorityKey key(kind, g, needs_energy ? &energy : nullptr,
                        stability.empty() ? nullptr : &stability);
  CdsResult result;
  marking_process_into(g, ctx.executor, result.marked_only);
  result.marked_count = result.marked_only.count();
  result.gateways = result.marked_only;
  apply_rule_k(g, key, strategy, ctx, result.gateways);
  apply_clique_policy(g, key, clique_policy, result.gateways);
  result.gateway_count = result.gateways.count();
  return result;
}

}  // namespace pacds
