#pragma once
// Priority keys: the single abstraction that unifies the paper's four rule
// families. Every reduction rule removes a marked node whose neighborhood is
// covered by higher-priority marked nodes; the families differ only in how
// "higher priority" is decided:
//
//   ID   (Rules 1,  2 )  — node id only                     (Wu & Li)
//   ND   (Rules 1a, 2a)  — (degree, id)                     lexicographic
//   EL1  (Rules 1b, 2b)  — (energy level, id)               lexicographic
//   EL2  (Rules 1b',2b') — (energy level, degree, id)       lexicographic
//
// A *smaller* key means the node is the one that yields (unmarks itself);
// i.e. the paper's "el(v) < el(u)" style conditions translate to
// less(v, u) == true. Ids are distinct, so every comparator below is a
// strict total order.

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"

namespace pacds {

/// Which node attribute chain decides yielding priority.
enum class KeyKind : std::uint8_t {
  kId,              ///< id — Rules 1/2
  kDegreeId,        ///< (degree, id) — Rules 1a/2a
  kEnergyId,        ///< (energy, id) — Rules 1b/2b
  kEnergyDegreeId,  ///< (energy, degree, id) — Rules 1b'/2b'
};

[[nodiscard]] std::string to_string(KeyKind kind);

/// Strict-total-order comparator over the nodes of one graph snapshot.
///
/// Holds non-owning views of the graph (for degrees) and the energy vector;
/// both must outlive the comparator. Energy levels are compared exactly
/// (==/<): ties are *meaningful* in the paper (all nodes start at the same
/// level and drain in lockstep groups), so no epsilon is applied.
class PriorityKey {
 public:
  /// `energy` may be null for kId / kDegreeId; it is required (and must have
  /// one entry per node) for the energy-based kinds.
  PriorityKey(KeyKind kind, const Graph& graph,
              const std::vector<double>* energy = nullptr);

  [[nodiscard]] KeyKind kind() const noexcept { return kind_; }

  /// True iff v has strictly lower priority than u (v is the one removed
  /// when coverage conditions hold).
  [[nodiscard]] bool less(NodeId v, NodeId u) const;

  /// True iff v is the strict minimum of {v, u, w}.
  [[nodiscard]] bool is_min_of_three(NodeId v, NodeId u, NodeId w) const;

  /// Nodes of the graph sorted by ascending priority.
  [[nodiscard]] std::vector<NodeId> ascending_order() const;

 private:
  [[nodiscard]] double energy_of(NodeId v) const;

  KeyKind kind_;
  const Graph* graph_;
  const std::vector<double>* energy_;
};

}  // namespace pacds
