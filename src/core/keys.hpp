#pragma once
// Priority keys: the single abstraction that unifies the paper's four rule
// families. Every reduction rule removes a marked node whose neighborhood is
// covered by higher-priority marked nodes; the families differ only in how
// "higher priority" is decided:
//
//   ID   (Rules 1,  2 )  — node id only                     (Wu & Li)
//   ND   (Rules 1a, 2a)  — (degree, id)                     lexicographic
//   EL1  (Rules 1b, 2b)  — (energy level, id)               lexicographic
//   EL2  (Rules 1b',2b') — (energy level, degree, id)       lexicographic
//   SEL                  — (stability, energy, id)          lexicographic
//
// A *smaller* key means the node is the one that yields (unmarks itself);
// i.e. the paper's "el(v) < el(u)" style conditions translate to
// less(v, u) == true. Ids are distinct, so every comparator below is a
// strict total order.
//
// SEL is the scenario pack's stability-aware extension (after the stable-CDS
// route-discovery line of work): each node carries a predicted link
// *instability* — an EWMA of its neighborhood churn — and nodes with higher
// churn yield first, so the backbone prefers hosts whose neighborhoods are
// quiet and changes less under mobility. With an all-equal stability vector
// SEL degenerates to exactly EL1.

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.hpp"

namespace pacds {

/// Which node attribute chain decides yielding priority.
enum class KeyKind : std::uint8_t {
  kId,                 ///< id — Rules 1/2
  kDegreeId,           ///< (degree, id) — Rules 1a/2a
  kEnergyId,           ///< (energy, id) — Rules 1b/2b
  kEnergyDegreeId,     ///< (energy, degree, id) — Rules 1b'/2b'
  kStabilityEnergyId,  ///< (stability, energy, id) — scenario-pack SEL
};

[[nodiscard]] std::string to_string(KeyKind kind);

/// Strict-total-order comparator over the nodes of one graph snapshot.
///
/// Holds non-owning views of the graph (for degrees) and the energy vector;
/// both must outlive the comparator. Energy levels are compared exactly
/// (==/<): ties are *meaningful* in the paper (all nodes start at the same
/// level and drain in lockstep groups), so no epsilon is applied.
class PriorityKey {
 public:
  /// `energy` may be null for kId / kDegreeId; it is required (and must have
  /// one entry per node) for the energy-based kinds. `stability` carries the
  /// per-node churn estimate for kStabilityEnergyId; null means "all equal"
  /// (a fresh network with no observed churn), which makes SEL coincide with
  /// EL1 — distributed snapshots that have no tracker use exactly that.
  PriorityKey(KeyKind kind, const Graph& graph,
              const std::vector<double>* energy = nullptr,
              const std::vector<double>* stability = nullptr);

  [[nodiscard]] KeyKind kind() const noexcept { return kind_; }

  /// True iff v has strictly lower priority than u (v is the one removed
  /// when coverage conditions hold).
  [[nodiscard]] bool less(NodeId v, NodeId u) const;

  /// True iff v is the strict minimum of {v, u, w}.
  [[nodiscard]] bool is_min_of_three(NodeId v, NodeId u, NodeId w) const;

  /// Nodes of the graph sorted by ascending priority.
  [[nodiscard]] std::vector<NodeId> ascending_order() const;

 private:
  [[nodiscard]] double energy_of(NodeId v) const;
  [[nodiscard]] double stability_of(NodeId v) const;

  KeyKind kind_;
  const Graph* graph_;
  const std::vector<double>* energy_;
  const std::vector<double>* stability_;
};

}  // namespace pacds
