#include "core/incremental.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace pacds {

IncrementalCds::IncrementalCds(Graph g, RuleSet rs, std::vector<double> energy,
                               CdsOptions options, ExecContext exec,
                               std::vector<double> stability)
    : graph_(std::move(g)),
      rule_set_(rs),
      energy_(std::move(energy)),
      stability_(std::move(stability)),
      options_(options),
      exec_(exec),
      marked_only_(static_cast<std::size_t>(graph_.num_nodes())),
      after_rule1_(static_cast<std::size_t>(graph_.num_nodes())),
      final_(static_cast<std::size_t>(graph_.num_nodes())),
      gateways_(static_cast<std::size_t>(graph_.num_nodes())),
      dirty_rows_(static_cast<std::size_t>(graph_.num_nodes())),
      dirty_keys_(static_cast<std::size_t>(graph_.num_nodes())),
      region_(static_cast<std::size_t>(graph_.num_nodes())),
      seed_(static_cast<std::size_t>(graph_.num_nodes())),
      touched_(static_cast<std::size_t>(graph_.num_nodes())),
      grow_src_(static_cast<std::size_t>(graph_.num_nodes())) {
  // Localized maintenance only works for the synchronous semantics; pin it
  // regardless of what the caller's options say.
  options_.strategy = Strategy::kSimultaneous;
  if (uses_energy(rule_set_) &&
      energy_.size() != static_cast<std::size_t>(graph_.num_nodes())) {
    throw std::invalid_argument(
        "IncrementalCds: energy-based scheme needs one level per node");
  }
  if (uses_stability(rule_set_)) {
    // Empty = "no churn observed yet": a fresh network starts all-stable.
    if (stability_.empty()) {
      stability_.assign(static_cast<std::size_t>(graph_.num_nodes()), 0.0);
    } else if (stability_.size() !=
               static_cast<std::size_t>(graph_.num_nodes())) {
      throw std::invalid_argument(
          "IncrementalCds: stability needs one estimate per node");
    }
  } else if (!stability_.empty()) {
    throw std::invalid_argument(
        "IncrementalCds: stability vector given but the scheme ignores it");
  }
  full_refresh();
}

void IncrementalCds::close_neighborhood(DynBitset& region) {
  grow_src_ = region;
  grow_src_.for_each_set([&](std::size_t i) {
    for (const NodeId x : graph_.neighbors(static_cast<NodeId>(i))) {
      region.set(static_cast<std::size_t>(x));
    }
  });
}

void IncrementalCds::propagate() {
  if (dirty_rows_.none() && dirty_keys_.none()) {
    last_touched_ = 0;
    return;
  }
  const obs::PhaseTimer timer(exec_.metrics, obs::Phase::kDeltaApply);
  const bool needs_energy = uses_energy(rule_set_);
  const PriorityKey key(key_kind_of(rule_set_), graph_,
                        needs_energy ? &energy_ : nullptr,
                        uses_stability(rule_set_) ? &stability_ : nullptr);

  // Stage 1 — marking over N[P]. Marking reads topology only, so key
  // changes (X) cannot flip it. seed_ accumulates the inputs of the next
  // stage: P, X, and the mark flips found here.
  region_ = dirty_rows_;
  close_neighborhood(region_);
  touched_ = region_;
  seed_ = dirty_rows_;
  seed_ |= dirty_keys_;
  region_.for_each_set([&](std::size_t i) {
    const bool m = marks_itself(graph_, static_cast<NodeId>(i));
    if (m != marked_only_.test(i)) {
      marked_only_.set(i, m);
      seed_.set(i);
    }
  });

  if (rule_set_ == RuleSet::kNR) {
    // No reduction rules: both downstream stages mirror the marking.
    region_.for_each_set([&](std::size_t i) {
      after_rule1_.set(i, marked_only_.test(i));
      final_.set(i, marked_only_.test(i));
    });
  } else {
    const Rule2Form form = rule2_form_of(rule_set_);
    // Stage 2 — Rule 1 decisions against the marking output, over
    // N[P ∪ X ∪ mark-flips]. seed_ is rebuilt for stage 3 with the Rule 1
    // flips (mark flips only matter downstream via Rule 1's output).
    region_ = seed_;
    close_neighborhood(region_);
    touched_ |= region_;
    seed_ = dirty_rows_;
    seed_ |= dirty_keys_;
    region_.for_each_set([&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool stays = marked_only_.test(i) &&
                         !rule1_would_unmark(graph_, marked_only_, key, v);
      if (stays != after_rule1_.test(i)) {
        after_rule1_.set(i, stays);
        seed_.set(i);
      }
    });
    // Stage 3 — Rule 2 decisions against the post-Rule-1 marks, over
    // N[P ∪ X ∪ rule1-flips].
    region_ = seed_;
    close_neighborhood(region_);
    touched_ |= region_;
    CdsWorkspace& ws = workspace();
    if (ws.lane_neighbors.empty()) ws.lane_neighbors.resize(1);
    std::vector<NodeId>& scratch = ws.lane_neighbors.front();
    region_.for_each_set([&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool stays = after_rule1_.test(i) &&
                         !rule2_would_unmark(graph_, after_rule1_, key, form, v,
                                             scratch);
      final_.set(i, stays);
    });
  }
  // The clique policy is component-global but O(n); reapply it wholesale.
  gateways_ = final_;
  apply_clique_policy(graph_, key, options_.clique_policy, gateways_);
  last_touched_ = touched_.count();
  if (exec_.metrics != nullptr) {
    exec_.metrics->add(obs::Counter::kLocalizedUpdates);
    exec_.metrics->add(obs::Counter::kNodesTouched, last_touched_);
  }
  dirty_rows_.reset_all();
  dirty_keys_.reset_all();
}

void IncrementalCds::full_refresh() {
  // Direct full-range recomputation of all three stages — equivalent to a
  // propagate() over an all-dirty region, minus the region bookkeeping, and
  // sharded across exec_.executor when one is set. Each pass evaluates the
  // same per-node decisions the localized updater would, so the stored stage
  // outputs are bit-identical either way.
  const bool needs_energy = uses_energy(rule_set_);
  const PriorityKey key(key_kind_of(rule_set_), graph_,
                        needs_energy ? &energy_ : nullptr,
                        uses_stability(rule_set_) ? &stability_ : nullptr);
  ExecContext pass_ctx = exec_;
  pass_ctx.workspace = &workspace();
  {
    const obs::PhaseTimer timer(exec_.metrics, obs::Phase::kMarking);
    marking_process_into(graph_, pass_ctx, marked_only_);
  }
  {
    const obs::PhaseTimer timer(exec_.metrics, obs::Phase::kRules);
    if (rule_set_ == RuleSet::kNR) {
      after_rule1_ = marked_only_;
      final_ = marked_only_;
    } else {
      simultaneous_rule1_pass_into(graph_, key, marked_only_, pass_ctx,
                                   after_rule1_);
      simultaneous_rule2_pass_into(graph_, key, rule2_form_of(rule_set_),
                                   after_rule1_, pass_ctx, final_);
    }
    gateways_ = final_;
    apply_clique_policy(graph_, key, options_.clique_policy, gateways_);
  }
  last_touched_ = static_cast<std::size_t>(graph_.num_nodes());
  if (exec_.metrics != nullptr) {
    exec_.metrics->add(obs::Counter::kFullRefreshes);
    exec_.metrics->add(obs::Counter::kNodesTouched, last_touched_);
  }
  dirty_rows_.reset_all();
  dirty_keys_.reset_all();
}

void IncrementalCds::ingest_delta(const EdgeDelta& delta) {
  for (const auto& [u, v] : delta.added) {
    if (!graph_.add_edge(u, v)) {
      throw std::invalid_argument("IncrementalCds::apply_delta: edge {" +
                                  std::to_string(u) + "," + std::to_string(v) +
                                  "} already present");
    }
    dirty_rows_.set(static_cast<std::size_t>(u));
    dirty_rows_.set(static_cast<std::size_t>(v));
  }
  for (const auto& [u, v] : delta.removed) {
    if (!graph_.remove_edge(u, v)) {
      throw std::invalid_argument("IncrementalCds::apply_delta: edge {" +
                                  std::to_string(u) + "," + std::to_string(v) +
                                  "} not present");
    }
    dirty_rows_.set(static_cast<std::size_t>(u));
    dirty_rows_.set(static_cast<std::size_t>(v));
  }
}

void IncrementalCds::ingest_energy(const std::vector<double>& energy) {
  if (!uses_energy(rule_set_)) {
    // Key ignores energy: store nothing, dirty nothing. (Callers may pass
    // an empty or full vector; either way statuses cannot change.)
    return;
  }
  if (energy.size() != static_cast<std::size_t>(graph_.num_nodes())) {
    throw std::invalid_argument(
        "IncrementalCds::set_energy: need one level per node");
  }
  for (std::size_t i = 0; i < energy.size(); ++i) {
    // Keys are only ever compared between marked nodes (Rule 1 candidates
    // and Rule 2 coverage pairs all carry the mark), so a key change at an
    // unmarked node cannot flip any decision and need not dirty anything.
    // A node that *becomes* marked is re-seeded by the mark-flip path, and
    // energy_ itself is always refreshed in full, so late readers (e.g. the
    // clique policy) still see current levels.
    if (energy[i] != energy_[i] && marked_only_.test(i)) dirty_keys_.set(i);
  }
  energy_.assign(energy.begin(), energy.end());
}

void IncrementalCds::ingest_stability(const std::vector<double>& stability) {
  if (!uses_stability(rule_set_)) {
    if (!stability.empty()) {
      throw std::invalid_argument(
          "IncrementalCds: stability vector given but the scheme ignores it");
    }
    return;
  }
  if (stability.size() != static_cast<std::size_t>(graph_.num_nodes())) {
    throw std::invalid_argument(
        "IncrementalCds: stability needs one estimate per node");
  }
  for (std::size_t i = 0; i < stability.size(); ++i) {
    // Same reasoning as ingest_energy: keys are only compared between
    // marked nodes, so only a marked node's changed estimate can flip a
    // decision; stability_ itself is refreshed in full below.
    if (stability[i] != stability_[i] && marked_only_.test(i)) {
      dirty_keys_.set(i);
    }
  }
  stability_.assign(stability.begin(), stability.end());
}

void IncrementalCds::apply_delta(const EdgeDelta& delta) {
  ingest_delta(delta);
  propagate();
}

void IncrementalCds::move_node(NodeId v,
                               const std::vector<NodeId>& new_neighbors) {
  EdgeDelta delta;
  const auto old_nbrs = graph_.neighbors(v);
  std::vector<NodeId> sorted_new = new_neighbors;
  std::sort(sorted_new.begin(), sorted_new.end());
  for (const NodeId u : old_nbrs) {
    if (!std::binary_search(sorted_new.begin(), sorted_new.end(), u)) {
      delta.removed.emplace_back(v, u);
    }
  }
  for (const NodeId u : sorted_new) {
    if (!graph_.has_edge(v, u)) delta.added.emplace_back(v, u);
  }
  apply_delta(delta);
}

void IncrementalCds::set_energy(const std::vector<double>& energy) {
  ingest_energy(energy);
  propagate();
}

void IncrementalCds::advance(const EdgeDelta& delta,
                             const std::vector<double>& energy) {
  // Ingest the topology first so the energy size check and the keys both
  // see the post-delta graph, then resolve everything in one pass.
  ingest_delta(delta);
  ingest_energy(energy);
  propagate();
}

void IncrementalCds::advance(const EdgeDelta& delta,
                             const std::vector<double>& energy,
                             const std::vector<double>& stability) {
  ingest_delta(delta);
  ingest_energy(energy);
  ingest_stability(stability);
  propagate();
}

}  // namespace pacds
