#include "core/incremental.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace pacds {

namespace {
constexpr int kAffectedRadius = 4;
}

IncrementalCds::IncrementalCds(Graph g, RuleSet rs, std::vector<double> energy,
                               CdsOptions options)
    : graph_(std::move(g)),
      rule_set_(rs),
      energy_(std::move(energy)),
      options_(options),
      marked_only_(static_cast<std::size_t>(graph_.num_nodes())),
      after_rule1_(static_cast<std::size_t>(graph_.num_nodes())),
      final_(static_cast<std::size_t>(graph_.num_nodes())),
      gateways_(static_cast<std::size_t>(graph_.num_nodes())) {
  // Localized maintenance only works for the synchronous semantics; pin it
  // regardless of what the caller's options say.
  options_.strategy = Strategy::kSimultaneous;
  if (uses_energy(rule_set_) &&
      energy_.size() != static_cast<std::size_t>(graph_.num_nodes())) {
    throw std::invalid_argument(
        "IncrementalCds: energy-based scheme needs one level per node");
  }
  full_refresh();
}

DynBitset IncrementalCds::ball(const std::vector<NodeId>& centers,
                               int radius) const {
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  DynBitset in_ball(n);
  std::vector<int> depth(n, -1);
  std::deque<NodeId> queue;
  for (const NodeId c : centers) {
    const auto ci = static_cast<std::size_t>(c);
    if (!in_ball.test(ci)) {
      in_ball.set(ci);
      depth[ci] = 0;
      queue.push_back(c);
    }
  }
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    const int d = depth[static_cast<std::size_t>(cur)];
    if (d >= radius) continue;
    for (const NodeId nxt : graph_.neighbors(cur)) {
      const auto ni = static_cast<std::size_t>(nxt);
      if (depth[ni] < 0) {
        depth[ni] = d + 1;
        in_ball.set(ni);
        queue.push_back(nxt);
      }
    }
  }
  return in_ball;
}

void IncrementalCds::recompute_region(const DynBitset& region) {
  const bool needs_energy = uses_energy(rule_set_);
  const PriorityKey key(key_kind_of(rule_set_), graph_,
                        needs_energy ? &energy_ : nullptr);
  // Stage 1: marking process over the region.
  region.for_each_set([&](std::size_t i) {
    const auto v = static_cast<NodeId>(i);
    marked_only_.set(i, marks_itself(graph_, v));
  });
  if (rule_set_ == RuleSet::kNR) {
    region.for_each_set(
        [&](std::size_t i) { after_rule1_.set(i, marked_only_.test(i)); });
    region.for_each_set(
        [&](std::size_t i) { final_.set(i, marked_only_.test(i)); });
  } else {
    const Rule2Form form = rule2_form_of(rule_set_);
    // Stage 2: Rule 1 decisions against the (fresh) marking output.
    region.for_each_set([&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool stays = marked_only_.test(i) &&
                         !rule1_would_unmark(graph_, marked_only_, key, v);
      after_rule1_.set(i, stays);
    });
    // Stage 3: Rule 2 decisions against the post-Rule-1 marks.
    region.for_each_set([&](std::size_t i) {
      const auto v = static_cast<NodeId>(i);
      const bool stays =
          after_rule1_.test(i) &&
          !rule2_would_unmark(graph_, after_rule1_, key, form, v);
      final_.set(i, stays);
    });
  }
  // The clique policy is component-global but O(n); reapply it wholesale.
  gateways_ = final_;
  apply_clique_policy(graph_, key, options_.clique_policy, gateways_);
}

void IncrementalCds::full_refresh() {
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  DynBitset all(n);
  all.set_all();
  recompute_region(all);
  last_touched_ = n;
}

void IncrementalCds::apply_delta(const EdgeDelta& delta) {
  if (delta.empty()) {
    last_touched_ = 0;
    return;
  }
  std::vector<NodeId> centers;
  for (const auto& [u, v] : delta.added) {
    if (!graph_.add_edge(u, v)) {
      throw std::invalid_argument("IncrementalCds::apply_delta: edge {" +
                                  std::to_string(u) + "," + std::to_string(v) +
                                  "} already present");
    }
    centers.push_back(u);
    centers.push_back(v);
  }
  for (const auto& [u, v] : delta.removed) {
    if (!graph_.remove_edge(u, v)) {
      throw std::invalid_argument("IncrementalCds::apply_delta: edge {" +
                                  std::to_string(u) + "," + std::to_string(v) +
                                  "} not present");
    }
    centers.push_back(u);
    centers.push_back(v);
  }
  const DynBitset region = ball(centers, kAffectedRadius);
  recompute_region(region);
  last_touched_ = region.count();
}

void IncrementalCds::move_node(NodeId v,
                               const std::vector<NodeId>& new_neighbors) {
  EdgeDelta delta;
  const auto old_nbrs = graph_.neighbors(v);
  std::vector<NodeId> sorted_new = new_neighbors;
  std::sort(sorted_new.begin(), sorted_new.end());
  for (const NodeId u : old_nbrs) {
    if (!std::binary_search(sorted_new.begin(), sorted_new.end(), u)) {
      delta.removed.emplace_back(v, u);
    }
  }
  for (const NodeId u : sorted_new) {
    if (!graph_.has_edge(v, u)) delta.added.emplace_back(v, u);
  }
  apply_delta(delta);
}

void IncrementalCds::set_energy(std::vector<double> energy) {
  if (uses_energy(rule_set_) &&
      energy.size() != static_cast<std::size_t>(graph_.num_nodes())) {
    throw std::invalid_argument(
        "IncrementalCds::set_energy: need one level per node");
  }
  energy_ = std::move(energy);
  full_refresh();
}

}  // namespace pacds
