#pragma once
// Vectorized kernels for the 64-bit word rows every coverage test in the
// pipeline runs over. The primitives mirror exactly what DynBitset and the
// dense rule kernels need — AND/AND-NOT/OR/XOR combines, subset and
// subset-of-union tests, popcounts, and first-uncovered-word scans — and
// every implementation is a pure word-wise function of its inputs, so all
// dispatch levels are bit-identical by construction (the test suite sweeps
// every level available on the host against the scalar path anyway).
//
// Dispatch ladder (highest available wins):
//
//   avx512  — 8 words per step, compiled with GCC/Clang target attributes,
//             selected when the CPU reports AVX-512F + AVX-512BW
//   avx2    — 4 words per step, selected on AVX2 hosts
//   neon    — 2 words per step, aarch64 baseline (compile-time)
//   scalar  — portable std::* fallback, always present
//
// The binary carries every path its compiler can emit (no -mavx2 build flag
// needed; each function is annotated individually) and picks one at runtime
// from CPUID. `PACDS_SIMD={auto,scalar,avx2,avx512,neon}` overrides the
// choice for testing; asking for a level the host lacks warns on stderr and
// falls back to the best available. Tests may also force a level through
// set_level(), which swaps one atomic pointer — safe between runs, and safe
// with concurrent readers (they see either full kernel table).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pacds::simd {

using Word = std::uint64_t;

enum class Level : std::uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// One fully-populated kernel table. All pointers are non-null for every
/// level; `nwords` may be 0 (every primitive then returns its identity).
struct Kernels {
  Level level;

  /// dst[i] |= src[i]
  void (*or_inplace)(Word* dst, const Word* src, std::size_t nwords);
  /// dst[i] &= src[i]
  void (*and_inplace)(Word* dst, const Word* src, std::size_t nwords);
  /// dst[i] &= ~src[i]
  void (*andnot_inplace)(Word* dst, const Word* src, std::size_t nwords);
  /// dst[i] ^= src[i]
  void (*xor_inplace)(Word* dst, const Word* src, std::size_t nwords);

  /// true iff a[i] & ~b[i] == 0 for all i (a ⊆ b).
  bool (*is_subset)(const Word* a, const Word* b, std::size_t nwords);
  /// is_subset with one bit excused: word `iw` of the uncovered residue is
  /// masked by ~imask before the zero test (Rule 1's N(v) \ {u} ⊆ N(u)).
  bool (*is_subset_except)(const Word* a, const Word* b, std::size_t nwords,
                           std::size_t iw, Word imask);
  /// true iff a[i] & ~(b[i] | c[i]) == 0 for all i (a ⊆ b ∪ c).
  bool (*is_subset_union)(const Word* a, const Word* b, const Word* c,
                          std::size_t nwords);
  /// true iff a[i] & b[i] != 0 for some i.
  bool (*intersects)(const Word* a, const Word* b, std::size_t nwords);
  /// Σ popcount(a[i]).
  std::size_t (*popcount)(const Word* a, std::size_t nwords);
  /// true iff every a[i] == 0.
  bool (*is_zero)(const Word* a, std::size_t nwords);
  /// dst[i] = a[i] & ~b[i]; returns Σ popcount(dst[i]). The Rule 2 residual
  /// builder (N(v) \ N(u)) fused with the popcount-vs-degree gate's input.
  std::size_t (*andnot_into)(Word* dst, const Word* a, const Word* b,
                             std::size_t nwords);
  /// Smallest i with a[i] & ~b[i] != 0, or nwords if none — "first
  /// uncovered word", the early-exit scan of the residual subset tests.
  std::size_t (*first_uncovered_word)(const Word* a, const Word* b,
                                      std::size_t nwords);
  /// Bit r of the result is set iff row r of `rows` (rows + r*nwords,
  /// nwords words) is a subset of b. nrows <= 64. The blocked Rule 2
  /// engine's batch test: one call per streamed coverage row instead of
  /// one dispatched call per candidate pair.
  std::uint64_t (*subset_rows)(const Word* rows, std::size_t nrows,
                               std::size_t nwords, const Word* b);
};

/// The dispatched kernel table. First call resolves the level: PACDS_SIMD
/// override if set, else the best level CPUID reports. Subsequent calls are
/// one relaxed atomic load.
[[nodiscard]] const Kernels& active() noexcept;

/// Level of the table active() currently returns.
[[nodiscard]] Level active_level() noexcept;

/// Highest level this host supports.
[[nodiscard]] Level detect_best() noexcept;

/// Every level this host can run, ascending (always starts with kScalar).
[[nodiscard]] std::vector<Level> available_levels();

/// Forces the active table to `level`. Returns false (and changes nothing)
/// when the host lacks it. Intended for tests and benchmarks; call between
/// pipeline runs, not concurrently with them.
bool set_level(Level level) noexcept;

/// "scalar", "neon", "avx2", "avx512".
[[nodiscard]] const char* to_string(Level level) noexcept;

}  // namespace pacds::simd
