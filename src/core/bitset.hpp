#pragma once
// Dynamic, word-packed bitset tuned for the set-algebra the CDS rules need:
// subset tests, unions, and covered-by-union-of-two tests over node
// neighborhoods. Unlike std::vector<bool>, the word representation makes a
// subset test a handful of AND/CMP instructions per 64 nodes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pacds {

/// Fixed-size-at-construction bitset over indices [0, size()).
///
/// All binary operations require equal sizes; violations throw
/// std::invalid_argument so misuse is caught in tests rather than silently
/// truncating.
class DynBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynBitset() = default;

  /// Constructs a bitset holding `nbits` bits, all clear.
  explicit DynBitset(std::size_t nbits);

  /// Number of bits this set ranges over (not the number of set bits).
  [[nodiscard]] std::size_t size() const noexcept { return nbits_; }

  /// Sets bit `i` to `value`. Throws std::out_of_range on bad index.
  void set(std::size_t i, bool value = true);

  /// Clears bit `i`.
  void reset(std::size_t i) { set(i, false); }

  /// Clears every bit.
  void reset_all() noexcept;

  /// Resizes to `nbits` bits, all clear. Never allocates when the word
  /// capacity already suffices (hot-loop workspaces call this every round).
  void resize_clear(std::size_t nbits);

  /// Sets every bit in [0, size()).
  void set_all() noexcept;

  /// Returns bit `i`. Throws std::out_of_range on bad index.
  [[nodiscard]] bool test(std::size_t i) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True iff no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// True iff at least one bit is set.
  [[nodiscard]] bool any() const noexcept { return !none(); }

  /// True iff every bit of *this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const DynBitset& other) const;

  /// True iff every bit of *this except possibly bit `ignore` is set in
  /// `other` (i.e. *this \ {ignore} ⊆ other). `ignore` must be < size().
  /// This is Rule 1's coverage test N(v) \ {u} ⊆ N(u) as a handful of
  /// AND/CMP instructions per 64 nodes.
  [[nodiscard]] bool is_subset_of_except(const DynBitset& other,
                                         std::size_t ignore) const;

  /// True iff every bit of *this is set in `a` or in `b`
  /// (i.e. *this ⊆ a ∪ b) without materializing the union.
  [[nodiscard]] bool is_subset_of_union(const DynBitset& a,
                                        const DynBitset& b) const;

  /// True iff *this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const DynBitset& other) const;

  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);
  DynBitset& operator^=(const DynBitset& other);

  /// Removes from *this every bit set in `other`.
  DynBitset& subtract(const DynBitset& other);

  friend DynBitset operator|(DynBitset lhs, const DynBitset& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend DynBitset operator&(DynBitset lhs, const DynBitset& rhs) {
    lhs &= rhs;
    return lhs;
  }

  bool operator==(const DynBitset& other) const = default;

  /// Index of the lowest set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the lowest set bit strictly greater than `i`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        fn(w * kWordBits + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Calls `fn(index)` for every set bit in [begin, min(end, size())) in
  /// ascending order — the shard-local view of for_each_set used by the
  /// parallel pipeline passes.
  template <typename Fn>
  void for_each_set_in_range(std::size_t begin, std::size_t end,
                             Fn&& fn) const {
    if (end > nbits_) end = nbits_;
    if (begin >= end) return;
    const std::size_t wfirst = begin / kWordBits;
    const std::size_t wlast = (end - 1) / kWordBits;
    for (std::size_t w = wfirst; w <= wlast; ++w) {
      Word bits = words_[w];
      if (w == wfirst) bits &= ~Word{0} << (begin % kWordBits);
      if (w == wlast && end % kWordBits != 0) {
        bits &= (Word{1} << (end % kWordBits)) - 1;
      }
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        fn(w * kWordBits + bit);
        bits &= bits - 1;
      }
    }
  }

  /// Read-only view of the packed words (padding bits beyond size() are
  /// zero). Lets hot kernels run word-parallel scans — e.g. the Rule 2
  /// residual fast path — without going through per-bit accessors.
  [[nodiscard]] std::span<const Word> words() const noexcept { return words_; }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  /// "{1, 4, 7}"-style rendering, useful in test failure messages.
  [[nodiscard]] std::string to_string() const;

 private:
  void check_same_size(const DynBitset& other) const;
  void clear_padding() noexcept;

  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

}  // namespace pacds
