#pragma once
// Reusable scratch state for the CDS pipeline. One CdsWorkspace owned by a
// long-lived engine turns every steady-state recomputation into a
// zero-heap-allocation operation: stage double-buffers and the per-lane
// marked-neighbor buffers are sized once on first use and only touched
// (never reallocated) afterwards. The per-lane vectors pair with
// Executor::run_chunks lane indices — concurrent chunks get distinct lanes,
// so lock-free indexed access is safe.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bitset.hpp"
#include "core/dense.hpp"
#include "core/graph.hpp"
#include "core/parallel.hpp"
#include "core/rule2_blocked.hpp"

namespace pacds {

namespace obs {
class MetricsRegistry;  // full definition in obs/metrics.hpp
}

/// Scratch buffers threaded through compute_cds / apply_rules /
/// IncrementalCds. Contents are clobbered by every pipeline call; only
/// capacity persists.
struct CdsWorkspace {
  /// Per-lane scratch of the blocked Rule 2 pair engine: a block of
  /// residuals N(v) \ N(u) plus the refined form's lazily-built reverse
  /// residuals (see rule2_blocked.hpp).
  using Rule2Lane = Rule2BlockLane;

  /// Per-executor-lane Rule 2 marked-neighbor buffers.
  std::vector<std::vector<NodeId>> lane_neighbors;
  /// Per-executor-lane residual word buffers (dense Rule 2 fast path).
  std::vector<Rule2Lane> lane_residuals;
  /// Double buffer for simultaneous passes (next mark set under
  /// construction).
  DynBitset stage;
  /// Dense-row acceleration for the full-graph passes at small n; synced
  /// on demand against Graph::version() (see dense.hpp).
  DenseAdjacency dense;

  /// Ensures at least `lanes` neighbor buffers exist and `stage` ranges
  /// over `nbits` bits (cleared). Allocation-free once warm at these sizes.
  void prepare(std::size_t lanes, std::size_t nbits) {
    if (lane_neighbors.size() < lanes) lane_neighbors.resize(lanes);
    if (lane_residuals.size() < lanes) lane_residuals.resize(lanes);
    stage.resize_clear(nbits);
  }
};

/// How a pipeline entry point should execute: which executor shards the
/// node range (null = serial inline), which workspace provides scratch
/// (null = function-local buffers), and which metrics registry receives
/// phase timings and counters (null = record nothing, pay nothing). All
/// referents are borrowed and must outlive the call.
struct ExecContext {
  Executor* executor = nullptr;
  CdsWorkspace* workspace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] std::size_t lanes() const {
    return executor != nullptr ? executor->max_lanes() : 1;
  }
};

}  // namespace pacds
