#pragma once
// Articulation points (cut vertices) and bridges, via Tarjan's low-link
// DFS. In an ad hoc network a cut vertex is a host whose failure splits its
// component — such hosts are "essential gateways": every CDS of the
// component must include every cut vertex that has neighbors on both sides
// (in fact every internal vertex of every path). We use them to explain
// the lifetime ceiling: no selection scheme can relieve an articulation
// host of gateway duty, so its battery bounds the network lifetime.

#include <utility>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// All articulation points of g (per component), as a bitset.
[[nodiscard]] DynBitset articulation_points(const Graph& g);

/// All bridges of g (edges whose removal splits a component), u < v.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> bridges(const Graph& g);

/// Fraction of gateway-duty that is structurally forced: |articulation ∩
/// set| / |set| (0 when the set is empty).
[[nodiscard]] double forced_gateway_fraction(const Graph& g,
                                             const DynBitset& set);

/// True iff g is connected and has no articulation point (2-connected for
/// n >= 3; K2 and trivial graphs count as biconnected). A biconnected
/// backbone survives the loss of any single member — the invariant behind
/// the (2,2)-connected dominating sets in baselines/cds22.
[[nodiscard]] bool is_biconnected(const Graph& g);

}  // namespace pacds
