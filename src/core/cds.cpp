#include "core/cds.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace pacds {

std::string to_string(RuleSet rs) {
  switch (rs) {
    case RuleSet::kNR:
      return "NR";
    case RuleSet::kID:
      return "ID";
    case RuleSet::kND:
      return "ND";
    case RuleSet::kEL1:
      return "EL1";
    case RuleSet::kEL2:
      return "EL2";
    case RuleSet::kSEL:
      return "SEL";
  }
  return "?";
}

bool uses_energy(RuleSet rs) {
  return rs == RuleSet::kEL1 || rs == RuleSet::kEL2 || rs == RuleSet::kSEL;
}

bool uses_stability(RuleSet rs) { return rs == RuleSet::kSEL; }

bool uses_stability(KeyKind kind) {
  return kind == KeyKind::kStabilityEnergyId;
}

KeyKind key_kind_of(RuleSet rs) {
  switch (rs) {
    case RuleSet::kNR:
    case RuleSet::kID:
      return KeyKind::kId;
    case RuleSet::kND:
      return KeyKind::kDegreeId;
    case RuleSet::kEL1:
      return KeyKind::kEnergyId;
    case RuleSet::kEL2:
      return KeyKind::kEnergyDegreeId;
    case RuleSet::kSEL:
      return KeyKind::kStabilityEnergyId;
  }
  return KeyKind::kId;
}

Rule2Form rule2_form_of(RuleSet rs) {
  // The original ID rules use the min-of-three Rule 2; the extensions
  // (Sections 3.1-3.2) all use the coverage-symmetry case analysis.
  return rs == RuleSet::kID ? Rule2Form::kSimple : Rule2Form::kRefined;
}

CdsResult compute_cds_custom(const Graph& g, KeyKind kind,
                             const RuleConfig& config,
                             const std::vector<double>& energy,
                             CliquePolicy clique_policy, const ExecContext& ctx,
                             const std::vector<double>& stability) {
  const bool needs_energy = kind == KeyKind::kEnergyId ||
                            kind == KeyKind::kEnergyDegreeId ||
                            kind == KeyKind::kStabilityEnergyId;
  if (needs_energy &&
      energy.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "compute_cds: energy-based scheme needs one level per node");
  }
  if (!stability.empty() && !uses_stability(kind)) {
    throw std::invalid_argument(
        "compute_cds: stability vector given but the key ignores it");
  }
  if (!stability.empty() &&
      stability.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "compute_cds: stability vector needs one estimate per node");
  }
  const PriorityKey key(kind, g, needs_energy ? &energy : nullptr,
                        stability.empty() ? nullptr : &stability);

  // Give the whole pipeline one workspace even when the caller didn't pass
  // any, so marking and both rule passes share a single dense-row sync.
  CdsWorkspace local_ws;
  ExecContext run_ctx = ctx;
  if (run_ctx.workspace == nullptr) run_ctx.workspace = &local_ws;

  CdsResult result;
  {
    const obs::PhaseTimer timer(ctx.metrics, obs::Phase::kMarking);
    marking_process_into(g, run_ctx, result.marked_only);
  }
  result.marked_count = result.marked_only.count();
  result.gateways = result.marked_only;
  {
    const obs::PhaseTimer timer(ctx.metrics, obs::Phase::kRules);
    apply_rules(g, key, config, run_ctx, result.gateways);
    apply_clique_policy(g, key, clique_policy, result.gateways);
  }
  result.gateway_count = result.gateways.count();
  if (ctx.metrics != nullptr) {
    ctx.metrics->add(obs::Counter::kFullRefreshes);
    ctx.metrics->add(obs::Counter::kNodesTouched,
                     static_cast<std::uint64_t>(g.num_nodes()));
  }
  return result;
}

CdsResult compute_cds(const Graph& g, RuleSet rs,
                      const std::vector<double>& energy,
                      const CdsOptions& options, const ExecContext& ctx,
                      const std::vector<double>& stability) {
  RuleConfig config;
  config.use_rule1 = rs != RuleSet::kNR;
  config.use_rule2 = rs != RuleSet::kNR;
  config.rule2_form = rule2_form_of(rs);
  config.strategy = options.strategy;
  return compute_cds_custom(g, key_kind_of(rs), config, energy,
                            options.clique_policy, ctx, stability);
}

}  // namespace pacds
