#include "core/articulation.hpp"

#include <algorithm>

namespace pacds {

namespace {

/// Iterative Tarjan low-link DFS computing articulation points and bridges
/// in one sweep (recursion-free so deep paths cannot overflow the stack).
struct LowLink {
  explicit LowLink(const Graph& g)
      : graph(&g),
        n(static_cast<std::size_t>(g.num_nodes())),
        disc(n, -1),
        low(n, 0),
        parent(n, -1),
        is_articulation(n) {}

  void run() {
    for (NodeId root = 0; root < graph->num_nodes(); ++root) {
      if (disc[static_cast<std::size_t>(root)] < 0) dfs(root);
    }
  }

  void dfs(NodeId root) {
    struct Frame {
      NodeId node;
      std::size_t next_child = 0;
    };
    std::vector<Frame> stack{{root}};
    NodeId root_children = 0;
    disc[static_cast<std::size_t>(root)] = timer;
    low[static_cast<std::size_t>(root)] = timer;
    ++timer;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto vi = static_cast<std::size_t>(frame.node);
      const auto nbrs = graph->neighbors(frame.node);
      if (frame.next_child < nbrs.size()) {
        const NodeId u = nbrs[frame.next_child++];
        const auto ui = static_cast<std::size_t>(u);
        if (disc[ui] < 0) {
          parent[ui] = frame.node;
          if (frame.node == root) ++root_children;
          disc[ui] = timer;
          low[ui] = timer;
          ++timer;
          stack.push_back({u});
        } else if (u != parent[vi]) {
          low[vi] = std::min(low[vi], disc[ui]);
        }
      } else {
        stack.pop_back();
        const NodeId p = parent[vi];
        if (p >= 0) {
          const auto pi = static_cast<std::size_t>(p);
          low[pi] = std::min(low[pi], low[vi]);
          if (p != root && low[vi] >= disc[pi]) {
            is_articulation.set(pi);
          }
          if (low[vi] > disc[pi]) {
            edge_bridges.emplace_back(std::min(p, frame.node),
                                      std::max(p, frame.node));
          }
        }
      }
    }
    if (root_children >= 2) {
      is_articulation.set(static_cast<std::size_t>(root));
    }
  }

  const Graph* graph;
  std::size_t n;
  std::vector<NodeId> disc;
  std::vector<NodeId> low;
  std::vector<NodeId> parent;
  DynBitset is_articulation;
  std::vector<std::pair<NodeId, NodeId>> edge_bridges;
  NodeId timer = 0;
};

}  // namespace

DynBitset articulation_points(const Graph& g) {
  LowLink ll(g);
  ll.run();
  return ll.is_articulation;
}

std::vector<std::pair<NodeId, NodeId>> bridges(const Graph& g) {
  LowLink ll(g);
  ll.run();
  std::sort(ll.edge_bridges.begin(), ll.edge_bridges.end());
  return ll.edge_bridges;
}

double forced_gateway_fraction(const Graph& g, const DynBitset& set) {
  const std::size_t total = set.count();
  if (total == 0) return 0.0;
  const DynBitset cuts = articulation_points(g);
  std::size_t forced = 0;
  set.for_each_set([&](std::size_t i) {
    if (cuts.test(i)) ++forced;
  });
  return static_cast<double>(forced) / static_cast<double>(total);
}

bool is_biconnected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  if (!g.is_connected()) return false;
  return articulation_points(g).none();
}

}  // namespace pacds
