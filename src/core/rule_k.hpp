#pragma once
// Generalized coverage rule ("Rule k", Dai & Wu 2004) — the follow-up that
// fixes the pairwise rules' unsafe simultaneous case and subsumes Rules 1
// and 2: a marked node v unmarks itself when its open neighborhood is
// covered by the union of neighborhoods of a CONNECTED set of neighbors
// that all have strictly HIGHER priority. Because every remover defers to
// strictly higher-priority covers, synchronous (simultaneous) application
// is provably safe — the priority-maximal cover chain always survives.
//
// Plugging the energy-based keys into Rule k yields the power-aware variant
// this library adds as an extension experiment (bench/extension_rule_k):
// the paper's "future work" of deeper power-aware selection.

#include "core/bitset.hpp"
#include "core/cds.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/marking.hpp"
#include "core/rules.hpp"

namespace pacds {

/// True iff marked node v is covered by a connected set of higher-priority
/// marked neighbors. Checks each connected component of the induced
/// subgraph on {u ∈ N(v) : marked(u), key(v) < key(u)} — taking a whole
/// component is the maximal connected candidate, so no subset search is
/// needed. With `dense` rows available the component unions and the
/// coverage test run word-parallel through the simd kernel layer instead
/// of per-bit; decisions are identical.
[[nodiscard]] bool rule_k_would_unmark(const Graph& g, const DynBitset& marked,
                                       const PriorityKey& key, NodeId v,
                                       const DenseAdjacency* dense = nullptr);

/// One synchronous Rule-k pass (decisions against `marked`, committed
/// together). Safe by the priority argument above.
[[nodiscard]] DynBitset simultaneous_rule_k_pass(const Graph& g,
                                                 const PriorityKey& key,
                                                 const DynBitset& marked);

/// Sharded/in-place variant: decisions are evaluated against the frozen
/// input and committed into `next`, node range split across the context's
/// executor when non-null — bit-identical to the serial pass for any thread
/// count. The context's workspace supplies the dense-row fast path.
void simultaneous_rule_k_pass_into(const Graph& g, const PriorityKey& key,
                                   const DynBitset& marked,
                                   const ExecContext& ctx, DynBitset& next);
void simultaneous_rule_k_pass_into(const Graph& g, const PriorityKey& key,
                                   const DynBitset& marked, Executor* exec,
                                   DynBitset& next);

/// Applies Rule k to `marked` in place with the chosen strategy
/// (simultaneous passes iterate to a fixpoint; sequential sweeps in
/// ascending key order). The ExecContext overload shards the simultaneous
/// pass; sequential strategies always run serially.
void apply_rule_k(const Graph& g, const PriorityKey& key, Strategy strategy,
                  DynBitset& marked);
void apply_rule_k(const Graph& g, const PriorityKey& key, Strategy strategy,
                  const ExecContext& ctx, DynBitset& marked);

/// Marking process + Rule k in one call, mirroring compute_cds. `ctx`
/// shards the marking and Rule-k passes across its executor when set.
[[nodiscard]] CdsResult compute_cds_rule_k(
    const Graph& g, KeyKind kind, const std::vector<double>& energy = {},
    Strategy strategy = Strategy::kSimultaneous,
    CliquePolicy clique_policy = CliquePolicy::kNone,
    const ExecContext& ctx = {}, const std::vector<double>& stability = {});

}  // namespace pacds
