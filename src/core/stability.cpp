#include "core/stability.hpp"

#include <cmath>
#include <stdexcept>

namespace pacds {

StabilityTracker::StabilityTracker(std::size_t n, double beta, double quantum)
    : beta_(beta),
      quantum_(quantum),
      counts_(n, 0.0),
      ewma_(n, 0.0),
      quantized_(n, 0.0) {
  if (!(beta >= 0.0) || !(beta <= 1.0)) {
    throw std::invalid_argument("StabilityTracker: beta must be in [0, 1]");
  }
  if (!std::isfinite(quantum)) {
    throw std::invalid_argument("StabilityTracker: quantum must be finite");
  }
}

void StabilityTracker::commit() {
  for (std::size_t i = 0; i < ewma_.size(); ++i) {
    // One multiply-add per term, in this exact order, on every engine —
    // the cross-engine bit-identity contract depends on it.
    ewma_[i] = beta_ * ewma_[i] + (1.0 - beta_) * counts_[i];
    counts_[i] = 0.0;
    quantized_[i] =
        quantum_ > 0.0 ? std::floor(ewma_[i] / quantum_) : ewma_[i];
  }
}

}  // namespace pacds
