#pragma once
// Fault-tolerance extension: backbone redundancy. A single-dominating
// backbone loses service the moment a gateway dies or walks away; the
// classical hardening is m-domination — every non-gateway host keeps at
// least m gateway neighbors. This module augments any gateway set to
// m-domination (promoting highest-priority neighbors first) and measures
// how much single-gateway failures actually cost in deliverability.

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"

namespace pacds {

/// Returns `gateways` plus the promotions needed so that every non-gateway
/// host with degree >= m has at least m gateway neighbors (hosts with
/// degree < m get all their neighbors promoted — the best achievable).
/// Promotion picks the highest-key eligible neighbors, so with energy keys
/// the backup gateways are the energy-richest hosts. The result is a
/// superset of `gateways`; connectivity of the induced backbone is
/// preserved (adding vertices adjacent to existing members never splits
/// it, and a promoted host is always adjacent to its promoter's
/// neighborhood... verified by tests rather than assumed).
[[nodiscard]] DynBitset augment_m_domination(const Graph& g,
                                             const DynBitset& gateways, int m,
                                             const PriorityKey& key);

/// True iff every node outside `set` has >= min(m, degree) neighbors in
/// `set`.
[[nodiscard]] bool is_m_dominating(const Graph& g, const DynBitset& set,
                                   int m);

/// Best-effort backbone biconnectivity: while the induced backbone has an
/// articulation vertex `a` and some non-backbone host is adjacent to two
/// different components of (backbone − a), promote the highest-key such
/// host — each promotion merges two blocks around `a`. Stops when no
/// single-host patch exists (some topologies need multi-host detours, which
/// this heuristic does not attempt). Result is always a superset.
[[nodiscard]] DynBitset augment_biconnectivity(const Graph& g,
                                               const DynBitset& gateways,
                                               const PriorityKey& key,
                                               int max_rounds = 256);

/// Articulation vertices of the *induced backbone* (as original node ids).
[[nodiscard]] DynBitset backbone_cut_vertices(const Graph& g,
                                              const DynBitset& gateways);

/// Single-failure robustness: for each gateway in turn, demote it (it stays
/// a host) and measure the fraction of connected host pairs the router can
/// still serve; returns the mean over all single failures. 1.0 = fully
/// robust. `baseline` (if non-null) receives the no-failure delivery
/// fraction for comparison.
[[nodiscard]] double single_failure_delivery(const Graph& g,
                                             const DynBitset& gateways,
                                             double* baseline = nullptr);

}  // namespace pacds
