#pragma once
// Blocked Rule 2 pair engine, shared by the flat dense pass (rules.cpp) and
// the per-tile kernels (tiles.cpp). For a marked node v with candidate
// covers c_0 < c_1 < ... < c_{m-1} (its marked neighbors), Rule 2 asks
// whether any pair (u, w) covers N(v); the classic loop streams the
// coverage row N(w) once per *pair* and tests the full N(w) ⊆ N(u) ∪ N(v)
// union row for the refined form's competitor coverage. This engine keeps
// two per-candidate residual caches instead, built lazily on first use:
//
//   rem1[i] = N(v) \ N(c_i)     "what c_i leaves uncovered of v's hood"
//   rem2[i] = N(c_i) \ N(v)     "what v leaves uncovered of c_i's hood"
//
// and reduces every coverage question to a residual containment:
//
//   pair (u=c_i, w=c_j) covers v   ⟺  rem1[i] ⊆ N(c_j)
//   w covers competitor u (cov_u)  ⟺  rem2[i] ⊆ N(c_j)
//   u covers competitor w (cov_w)  ⟺  rem2[j] ⊆ N(c_i)
//
// (the last because N(w) ⊆ N(u) ∪ N(v) ⟺ N(w) \ N(v) ⊆ N(u)). Candidate
// pairs are walked in blocks of at most 64 rows of the i dimension: the
// block's rem1 rows are materialized once (row-major, so they sit
// contiguous and L1-resident), then each coverage row N(c_j) streams once
// per block — not once per pair — through a single subset_rows kernel call
// that answers "which rem1 rows fit inside N(c_j)?" as a 64-bit mask. That
// turns the O(m²) dispatched per-pair subset tests into O(m) batch calls
// per block, which is where the old engine spent its time (the indirect
// call cost more than the handful of row words it scanned). rem2 rows stay
// lazy with popcount-vs-degree gates and nonzero-range scans, since the
// refined case analysis only reads them for pairs that already cover v.
//
// The pair decision is existential (v yields iff SOME pair fires), so the
// loop-order change is decision-identical to the classic nested loop, and
// the residual forms of cov_u / cov_w are algebraically the same booleans
// the refined case analysis always consumed. `Env` supplies the geometry:
//
//   const simd::Word* vrow()               N(v) row words
//   const simd::Word* row(std::size_t i)   N(c_i) row words
//   std::size_t degree(std::size_t i)      |N(c_i)| (gate; called lazily)
//   bool min3(std::size_t i, std::size_t j)        key.is_min_of_three
//   bool refined_cases(i, j, bool cov_u, bool cov_w)

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd.hpp"

namespace pacds {

/// Reusable scratch for one executor lane (or one tile) of the blocked
/// engine. Only capacity persists between calls.
struct Rule2BlockLane {
  std::vector<simd::Word> uni;       ///< union-screen residual (ping)
  std::vector<simd::Word> uni2;      ///< union-screen residual (pong)
  std::vector<simd::Word> rem;       ///< rem1 rows N(v) \ N(c_i), row-major
  std::vector<simd::Word> rem2;      ///< rem2 rows N(c_i) \ N(v), row-major
  std::vector<std::uint32_t> deg;    ///< candidate degree, lazy (kUnset32)
  std::vector<std::uint32_t> pop2;   ///< popcount per rem2 row
  std::vector<std::uint32_t> lo2;    ///< nonzero range per rem2 row
  std::vector<std::uint32_t> hi2;
  std::vector<std::uint8_t> built2;  ///< rem2 row materialized yet?
};

namespace detail {

inline constexpr std::uint32_t kUnset32 = 0xffffffffu;

/// Scans dst[0..nwords) for its nonzero word range; pop > 0 guaranteed.
inline void nonzero_range(const simd::Word* dst, std::size_t nwords,
                          std::uint32_t& lo, std::uint32_t& hi) {
  std::size_t first = 0;
  while (dst[first] == 0) ++first;
  std::size_t last = nwords - 1;
  while (dst[last] == 0) --last;
  lo = static_cast<std::uint32_t>(first);
  hi = static_cast<std::uint32_t>(last);
}

/// Ranged containment a ⊆ b over a handful of words. Below the threshold
/// an inline scalar scan beats any dispatched kernel (the indirect call
/// costs more than the words); wider ranges go through `k`.
inline bool subset_ranged(const simd::Kernels& k, const simd::Word* a,
                          const simd::Word* b, std::size_t nwords) {
  if (nwords <= 4) {
    for (std::size_t i = 0; i < nwords; ++i) {
      if ((a[i] & ~b[i]) != 0) return false;
    }
    return true;
  }
  return k.is_subset(a, b, nwords);
}

}  // namespace detail

/// True iff some candidate pair covers v. `m` candidates, rows of `nwords`
/// words; `simple` selects the min-of-three form, otherwise the refined
/// case analysis runs.
template <typename Env>
bool rule2_blocked_fires(const Env& env, std::size_t m, std::size_t nwords,
                         bool simple, Rule2BlockLane& lane) {
  if (m < 2 || nwords == 0) return false;
  const simd::Kernels& k = simd::active();
  const simd::Word* vrow = env.vrow();
  // Union screen: peel candidate hoods off N(v) until nothing is left. If
  // a residue survives all m candidates, some neighbor of v is adjacent to
  // NO candidate, so no pair can cover v — the whole pair loop is skipped.
  // (Any pair cover N(v) ⊆ N(u) ∪ N(w) is inside the full union, so the
  // screen never skips a firing node.) Most nodes that keep their mark do
  // so precisely because such a neighbor exists, which makes this the
  // common exit; nodes that might fire usually zero the residue within a
  // few candidates (andnot_into returns the residue popcount, so each peel
  // is one fused kernel call).
  {
    if (lane.uni.size() < nwords) {
      lane.uni.resize(nwords);
      lane.uni2.resize(nwords);
    }
    const simd::Word* cur = vrow;
    simd::Word* front = lane.uni.data();
    simd::Word* back = lane.uni2.data();
    std::size_t residue = 1;
    for (std::size_t i = 0; i < m; ++i) {
      residue = k.andnot_into(front, cur, env.row(i), nwords);
      if (residue == 0) break;
      cur = front;
      std::swap(front, back);
    }
    if (residue != 0) return false;
  }
  if (lane.rem.size() < m * nwords) {
    lane.rem.resize(m * nwords);
    lane.rem2.resize(m * nwords);
  }
  if (lane.deg.size() < m) {
    lane.deg.resize(m);
    lane.pop2.resize(m);
    lane.lo2.resize(m);
    lane.hi2.resize(m);
    lane.built2.resize(m);
  }
  for (std::size_t i = 0; i < m; ++i) {
    lane.built2[i] = 0;
    lane.deg[i] = detail::kUnset32;
  }
  const auto degree = [&](std::size_t i) {
    if (lane.deg[i] == detail::kUnset32) {
      lane.deg[i] = static_cast<std::uint32_t>(env.degree(i));
    }
    return lane.deg[i];
  };
  const auto build2 = [&](std::size_t i) {
    if (lane.built2[i] == 0) {
      simd::Word* dst = lane.rem2.data() + i * nwords;
      lane.pop2[i] = static_cast<std::uint32_t>(
          k.andnot_into(dst, env.row(i), vrow, nwords));
      if (lane.pop2[i] != 0) {
        detail::nonzero_range(dst, nwords, lane.lo2[i], lane.hi2[i]);
      }
      lane.built2[i] = 1;
    }
  };
  /// rem2[a] ⊆ N(c_b)? (== "c_b covers competitor c_a's hood beyond v's").
  const auto covers = [&](std::size_t a, std::size_t b) {
    build2(a);
    if (lane.pop2[a] > degree(b)) return false;
    return lane.pop2[a] == 0 ||
           detail::subset_ranged(
               k, lane.rem2.data() + a * nwords + lane.lo2[a],
               env.row(b) + lane.lo2[a], lane.hi2[a] - lane.lo2[a] + 1);
  };
  // Tile the i dimension in blocks of at most 64 rows so the batch mask
  // fits one word. rem1 rows are row-major in lane.rem, so a block's rows
  // [b0, b1) sit contiguous at rem.data() + b0 * nwords and stay
  // L1-resident while each N(c_j) streams once per block. Rows build
  // incrementally (row i materializes the first time some j > i needs it),
  // so a pair that fires early never pays for the rows after it.
  std::size_t block = std::clamp<std::size_t>(2048 / nwords, 4, 64);
  if (block > m) block = m;
  for (std::size_t b0 = 0; b0 < m; b0 += block) {
    const std::size_t b1 = std::min(m, b0 + block);
    std::size_t built_hi = b0;  // rows [b0, built_hi) are materialized
    for (std::size_t j = b0 + 1; j < m; ++j) {
      const std::size_t iend = std::min(j, b1);
      while (built_hi < iend) {
        k.andnot_into(lane.rem.data() + built_hi * nwords, vrow,
                      env.row(built_hi), nwords);
        ++built_hi;
      }
      // Bit r set  ⟺  rem1[b0 + r] ⊆ N(c_j)  ⟺  pair (c_{b0+r}, c_j)
      // covers N(v).
      std::uint64_t fires = k.subset_rows(lane.rem.data() + b0 * nwords,
                                          iend - b0, nwords, env.row(j));
      while (fires != 0) {
        const std::size_t i =
            b0 + static_cast<std::size_t>(std::countr_zero(fires));
        fires &= fires - 1;
        if (simple) {
          if (env.min3(i, j)) return true;
          continue;
        }
        const bool cov_u = covers(i, j);
        const bool cov_w = covers(j, i);
        if (env.refined_cases(i, j, cov_u, cov_w)) return true;
      }
    }
  }
  return false;
}

}  // namespace pacds
