#pragma once
// Structural metrics of a network snapshot: degree statistics, density,
// clustering. Used by the CLI's `info` subcommand and by experiment
// write-ups to characterize the random-topology regimes (the rules'
// effectiveness depends heavily on neighborhood redundancy).

#include <cstddef>
#include <vector>

#include "core/graph.hpp"

namespace pacds {

/// Degree distribution and summary stats.
struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
  std::vector<std::size_t> histogram;  ///< histogram[d] = #nodes of degree d
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// |E| / C(n, 2); 0 for n < 2.
[[nodiscard]] double edge_density(const Graph& g);

/// Local clustering coefficient of v: closed triangles among N(v) over
/// C(deg, 2); 0 for degree < 2.
[[nodiscard]] double local_clustering(const Graph& g, NodeId v);

/// Mean local clustering over all nodes (0 for the empty graph). Unit-disk
/// graphs cluster heavily (~0.59 asymptotically), which is exactly why the
/// coverage rules find so much redundancy to prune.
[[nodiscard]] double average_clustering(const Graph& g);

/// Number of triangles in g.
[[nodiscard]] std::size_t triangle_count(const Graph& g);

}  // namespace pacds
