#pragma once
// Spatial tiling of the simulation field for locality-sharded CDS
// maintenance at large n. The global Graph stays CSR (O(n + m) — graph.hpp);
// dense DynBitset adjacency rows, which make every coverage test
// word-parallel, are materialized only *per tile* over the tile's local
// universe (owned hosts plus a 2r halo), never globally. One tile therefore
// costs O(L²/64) bits with L = |tile| + |halo| regardless of n, which is the
// peak-memory bound the tiled engine advertises.
//
// Correctness contract (DESIGN.md §9): every stage decision of the
// simultaneous pipeline is a pure function of inputs within a fixed radius
// of the deciding node —
//
//   marking(v)   — positions within ball(v, r)
//   rule1(v)     — positions within ball(v, 2r), keys within ball(v, r)
//   rule2(v)     — positions within ball(v, 3r), keys within ball(v, 2r)
//
// so a tile whose rectangle is farther than 3r from every changed position
// (and every changed key's position) provably keeps all three of its
// decisions, and recomputing a superset of the affected tiles is always
// sound. Within a tile, kernels run on the local dense rows; rows are
// complete (equal to the global neighborhood) for every node within r of
// the tile rectangle, which covers every row the kernels read: deciding
// nodes are owned (inside the rectangle) and the rows of their neighbors
// sit within r of it. Halo nodes in (r, 2r] appear only as bits in other
// rows. One ring of neighboring tiles supplies the whole 2r halo because
// the tile side never drops below 2r (enforced by TileGrid::reset).
//
// The tiling stays 2D (xy) even on a 3D field: xy distance lower-bounds 3D
// distance, so every ball(v, kr) above projects into the same xy disc and
// the rectangle-distance dirt tests and halo memberships remain supersets
// of the true 3D ones. A deep field wastes some locality (a column of
// hosts shares a tile) but never correctness.

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"
#include "core/keys.hpp"
#include "core/rule2_blocked.hpp"
#include "net/vec2.hpp"

namespace pacds {

/// Axis-aligned tiling of the field with per-tile owned-host lists.
/// Ownership follows current positions (clamped, so parked/out-of-field
/// hosts file under the nearest border tile; they are radio-isolated by
/// construction, so their rows are empty and clamping is harmless).
class TileGrid {
 public:
  /// Lays out the grid: `requested` tiles total (0 = as many as the side
  /// constraint allows), clamped so each tile side stays >= 2 * radius —
  /// the halo-width requirement above. Owned lists become empty.
  void reset(double width, double height, double radius, int requested,
             std::size_t n_hosts);

  [[nodiscard]] int tiles_x() const noexcept { return tiles_x_; }
  [[nodiscard]] int tiles_y() const noexcept { return tiles_y_; }
  [[nodiscard]] int tile_count() const noexcept { return tiles_x_ * tiles_y_; }
  [[nodiscard]] double radius() const noexcept { return radius_; }

  /// Tile index owning position `p` (indices clamped to the grid).
  [[nodiscard]] int tile_of(Vec2 p) const noexcept;

  /// Euclidean distance from `p` to tile `t`'s rectangle (0 inside).
  [[nodiscard]] double dist_to_rect(int t, Vec2 p) const noexcept;

  /// Files every host under its position's tile (initialization).
  void assign_all(const std::vector<Vec2>& positions);

  /// Re-files host v after a move; no-op when both positions map to the
  /// same tile. Owned lists stay sorted by id.
  void move_host(NodeId v, Vec2 old_pos, Vec2 new_pos);

  /// Hosts owned by tile t, ascending by id.
  [[nodiscard]] std::span<const NodeId> owned(int t) const {
    return owned_[static_cast<std::size_t>(t)];
  }

  /// Sets, in `dirty` (one bit per tile), every tile whose rectangle
  /// intersects the axis-aligned bounding box of ball(p, dist) — a cheap
  /// superset of the tiles within `dist` of p.
  void mark_dirty_around(Vec2 p, double dist, DynBitset& dirty) const;

 private:
  int tiles_x_ = 1;
  int tiles_y_ = 1;
  double side_x_ = 0.0;
  double side_y_ = 0.0;
  double radius_ = 0.0;
  std::vector<std::vector<NodeId>> owned_;
};

/// Per-tile scratch rebuilt each interval the tile is dirty: the sorted
/// local universe (owned + 2r halo), its dense local adjacency rows, and
/// the stage-decision output buffer. Persistent so steady-state rebuilds
/// reuse capacity and allocate nothing.
struct TileLocal {
  /// Global ids of the local universe, ascending (so local ascending order
  /// coincides with global ascending order — kernels visit pairs in the
  /// same order as the flat passes).
  std::vector<NodeId> locals;
  /// is_owned[i] != 0 iff locals[i] is owned by this tile.
  std::vector<std::uint8_t> is_owned;
  /// Local L×L adjacency rows (open neighborhoods).
  std::vector<DynBitset> rows;
  /// Stage output: decision bit per *owned* local index (halo bits unused).
  DynBitset out;
  /// Marked-neighbor pair-loop buffer (local indices).
  std::vector<std::uint32_t> scratch;
  /// Blocked Rule 2 residual scratch (rule2_blocked.hpp), persistent so
  /// steady-state tile rebuilds allocate nothing.
  Rule2BlockLane rule2_lane;
};

/// Per-executor-lane global→local translation used while building rows.
/// Epoch-stamped so consecutive builds skip the O(n) clear.
struct TileLaneScratch {
  std::vector<std::int32_t> local_of;
  std::vector<std::uint64_t> epoch;
  std::uint64_t current_epoch = 0;
};

/// Rebuilds `tl` for tile `t`: gathers the local universe from t and its
/// one-ring (every host within 2r of t's rectangle), then materializes the
/// local dense rows from the global CSR graph.
void build_tile_local(const Graph& g, const TileGrid& grid,
                      const std::vector<Vec2>& positions, int t,
                      TileLaneScratch& lane, TileLocal& tl);

// Stage kernels: each fills tl.out with the stage's decision for every
// owned local index, reading frozen global stage input where needed.
// Decision-identical to the flat marking/rule passes by construction.

/// Marking: out bit = marks_itself(v).
void tile_marking_stage(TileLocal& tl);

/// Rule 1: out bit = marked(v) && !rule1_would_unmark(v) against `marked`.
void tile_rule1_stage(const PriorityKey& key, const DynBitset& marked,
                      TileLocal& tl);

/// Rule 2 (either form): out bit = in(v) && !rule2_would_unmark(v) against
/// the post-Rule-1 set `in`. `form_simple` selects the min-of-three form.
void tile_rule2_stage(const PriorityKey& key, bool form_simple,
                      const DynBitset& in, TileLocal& tl);

/// Copies tl.out's owned decisions into the global stage bitset (serial —
/// the one synchronization point between parallel stage computes).
void scatter_tile_out(const TileLocal& tl, DynBitset& global);

}  // namespace pacds
