#include "core/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PACDS_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define PACDS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace pacds::simd {

namespace {

// ---- Scalar fallback -----------------------------------------------------
// The reference semantics every other level must match bit for bit. All
// loops tolerate nwords == 0 with null pointers (they never dereference).

void scalar_or(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}
void scalar_and(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}
void scalar_andnot(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}
void scalar_xor(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}
bool scalar_is_subset(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
bool scalar_is_subset_except(const Word* a, const Word* b, std::size_t n,
                             std::size_t iw, Word imask) {
  for (std::size_t i = 0; i < n; ++i) {
    Word uncovered = a[i] & ~b[i];
    if (i == iw) uncovered &= ~imask;
    if (uncovered != 0) return false;
  }
  return true;
}
bool scalar_is_subset_union(const Word* a, const Word* b, const Word* c,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}
bool scalar_intersects(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}
std::size_t scalar_popcount(const Word* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i]));
  }
  return total;
}
bool scalar_is_zero(const Word* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}
std::size_t scalar_andnot_into(Word* dst, const Word* a, const Word* b,
                               std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Word w = a[i] & ~b[i];
    dst[i] = w;
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}
std::size_t scalar_first_uncovered(const Word* a, const Word* b,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return i;
  }
  return n;
}
std::uint64_t scalar_subset_rows(const Word* rows, std::size_t nrows,
                                 std::size_t n, const Word* b) {
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < nrows; ++r) {
    const Word* a = rows + r * n;
    std::size_t i = 0;
    while (i < n && (a[i] & ~b[i]) == 0) ++i;
    if (i == n) out |= std::uint64_t{1} << r;
  }
  return out;
}

constexpr Kernels kScalarKernels = {
    Level::kScalar,       scalar_or,
    scalar_and,           scalar_andnot,
    scalar_xor,           scalar_is_subset,
    scalar_is_subset_except, scalar_is_subset_union,
    scalar_intersects,    scalar_popcount,
    scalar_is_zero,       scalar_andnot_into,
    scalar_first_uncovered, scalar_subset_rows};

#if defined(PACDS_SIMD_X86)

// ---- AVX2 (4 words per step) --------------------------------------------
// Compiled with per-function target attributes so the default build (no
// -mavx2) still carries the path; CPUID gates execution. Predicate kernels
// lean on VPTEST: testc(b, a) sets CF iff (~b & a) == 0, which is exactly
// the word-chunk subset test, and testz(a, b) sets ZF iff (a & b) == 0.

#define PACDS_TARGET_AVX2 __attribute__((target("avx2,popcnt")))

PACDS_TARGET_AVX2 inline __m256i load256(const Word* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
PACDS_TARGET_AVX2 inline void store256(Word* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

PACDS_TARGET_AVX2 void avx2_or(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_or_si256(load256(dst + i), load256(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}
PACDS_TARGET_AVX2 void avx2_and(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_and_si256(load256(dst + i), load256(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}
PACDS_TARGET_AVX2 void avx2_andnot(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // andnot(x, y) = ~x & y.
    store256(dst + i, _mm256_andnot_si256(load256(src + i), load256(dst + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}
PACDS_TARGET_AVX2 void avx2_xor(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store256(dst + i, _mm256_xor_si256(load256(dst + i), load256(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}
PACDS_TARGET_AVX2 bool avx2_is_subset(const Word* a, const Word* b,
                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (_mm256_testc_si256(load256(b + i), load256(a + i)) == 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX2 bool avx2_is_subset_except(const Word* a, const Word* b,
                                             std::size_t n, std::size_t iw,
                                             Word imask) {
  // The excused word is checked scalar; the vector loop skips the chunk
  // holding it and handles that chunk wordwise.
  if (iw < n && (a[iw] & ~b[iw] & ~imask) != 0) return false;
  const std::size_t chunk = iw / 4 * 4;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i == chunk) {
      for (std::size_t j = i; j < i + 4; ++j) {
        if (j != iw && (a[j] & ~b[j]) != 0) return false;
      }
      continue;
    }
    if (_mm256_testc_si256(load256(b + i), load256(a + i)) == 0) return false;
  }
  for (; i < n; ++i) {
    if (i != iw && (a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX2 bool avx2_is_subset_union(const Word* a, const Word* b,
                                            const Word* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i cover = _mm256_or_si256(load256(b + i), load256(c + i));
    if (_mm256_testc_si256(cover, load256(a + i)) == 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX2 bool avx2_intersects(const Word* a, const Word* b,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (_mm256_testz_si256(load256(a + i), load256(b + i)) == 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}
PACDS_TARGET_AVX2 std::size_t avx2_popcount(const Word* a, std::size_t n) {
  // Hardware POPCNT on the word stream beats nibble-LUT shuffles at the
  // row sizes the pipeline uses (<= 64 words); one count per cycle.
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return total;
}
PACDS_TARGET_AVX2 bool avx2_is_zero(const Word* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = load256(a + i);
    if (_mm256_testz_si256(v, v) == 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX2 std::size_t avx2_andnot_into(Word* dst, const Word* a,
                                               const Word* b, std::size_t n) {
  std::size_t i = 0;
  std::size_t total = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w = _mm256_andnot_si256(load256(b + i), load256(a + i));
    store256(dst + i, w);
    total += static_cast<std::size_t>(__builtin_popcountll(dst[i]));
    total += static_cast<std::size_t>(__builtin_popcountll(dst[i + 1]));
    total += static_cast<std::size_t>(__builtin_popcountll(dst[i + 2]));
    total += static_cast<std::size_t>(__builtin_popcountll(dst[i + 3]));
  }
  for (; i < n; ++i) {
    const Word w = a[i] & ~b[i];
    dst[i] = w;
    total += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return total;
}
PACDS_TARGET_AVX2 std::size_t avx2_first_uncovered(const Word* a,
                                                   const Word* b,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (_mm256_testc_si256(load256(b + i), load256(a + i)) == 0) {
      for (std::size_t j = i;; ++j) {
        if ((a[j] & ~b[j]) != 0) return j;
      }
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return i;
  }
  return n;
}

PACDS_TARGET_AVX2 std::uint64_t avx2_subset_rows(const Word* rows,
                                                 std::size_t nrows,
                                                 std::size_t n,
                                                 const Word* b) {
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < nrows; ++r) {
    const Word* a = rows + r * n;
    std::size_t i = 0;
    bool covered = true;
    for (; i + 4 <= n; i += 4) {
      if (_mm256_testc_si256(load256(b + i), load256(a + i)) == 0) {
        covered = false;
        break;
      }
    }
    if (covered) {
      for (; i < n; ++i) {
        if ((a[i] & ~b[i]) != 0) {
          covered = false;
          break;
        }
      }
    }
    if (covered) out |= std::uint64_t{1} << r;
  }
  return out;
}

constexpr Kernels kAvx2Kernels = {
    Level::kAvx2,          avx2_or,
    avx2_and,              avx2_andnot,
    avx2_xor,              avx2_is_subset,
    avx2_is_subset_except, avx2_is_subset_union,
    avx2_intersects,       avx2_popcount,
    avx2_is_zero,          avx2_andnot_into,
    avx2_first_uncovered,  avx2_subset_rows};

// ---- AVX-512 (8 words per step) -----------------------------------------
// VPTERNLOGQ fuses a & ~(b | c) into one op; VPTESTMQ yields the per-word
// nonzero mask the predicates branch on.

#define PACDS_TARGET_AVX512 __attribute__((target("avx512f,avx512bw,popcnt")))

PACDS_TARGET_AVX512 inline __m512i load512(const Word* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}
PACDS_TARGET_AVX512 inline void store512(Word* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

PACDS_TARGET_AVX512 void avx512_or(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_or_si512(load512(dst + i), load512(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}
PACDS_TARGET_AVX512 void avx512_and(Word* dst, const Word* src,
                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_and_si512(load512(dst + i), load512(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}
PACDS_TARGET_AVX512 void avx512_andnot(Word* dst, const Word* src,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i,
             _mm512_andnot_epi64(load512(src + i), load512(dst + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}
PACDS_TARGET_AVX512 void avx512_xor(Word* dst, const Word* src,
                                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_xor_si512(load512(dst + i), load512(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}
PACDS_TARGET_AVX512 bool avx512_is_subset(const Word* a, const Word* b,
                                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i uncovered =
        _mm512_andnot_epi64(load512(b + i), load512(a + i));
    if (_mm512_test_epi64_mask(uncovered, uncovered) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX512 bool avx512_is_subset_except(const Word* a, const Word* b,
                                                 std::size_t n, std::size_t iw,
                                                 Word imask) {
  if (iw < n && (a[iw] & ~b[iw] & ~imask) != 0) return false;
  const std::size_t chunk = iw / 8 * 8;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (i == chunk) {
      for (std::size_t j = i; j < i + 8; ++j) {
        if (j != iw && (a[j] & ~b[j]) != 0) return false;
      }
      continue;
    }
    const __m512i uncovered =
        _mm512_andnot_epi64(load512(b + i), load512(a + i));
    if (_mm512_test_epi64_mask(uncovered, uncovered) != 0) return false;
  }
  for (; i < n; ++i) {
    if (i != iw && (a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX512 bool avx512_is_subset_union(const Word* a, const Word* b,
                                                const Word* c, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // imm 0x10: output 1 only where a=1, b=0, c=0, i.e. a & ~(b | c).
    const __m512i uncovered = _mm512_ternarylogic_epi64(
        load512(a + i), load512(b + i), load512(c + i), 0x10);
    if (_mm512_test_epi64_mask(uncovered, uncovered) != 0) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX512 bool avx512_intersects(const Word* a, const Word* b,
                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    if (_mm512_test_epi64_mask(load512(a + i), load512(b + i)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}
PACDS_TARGET_AVX512 std::size_t avx512_popcount(const Word* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return total;
}
PACDS_TARGET_AVX512 bool avx512_is_zero(const Word* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = load512(a + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}
PACDS_TARGET_AVX512 std::size_t avx512_andnot_into(Word* dst, const Word* a,
                                                   const Word* b,
                                                   std::size_t n) {
  std::size_t i = 0;
  std::size_t total = 0;
  for (; i + 8 <= n; i += 8) {
    store512(dst + i, _mm512_andnot_epi64(load512(b + i), load512(a + i)));
    for (std::size_t j = i; j < i + 8; ++j) {
      total += static_cast<std::size_t>(__builtin_popcountll(dst[j]));
    }
  }
  for (; i < n; ++i) {
    const Word w = a[i] & ~b[i];
    dst[i] = w;
    total += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return total;
}
PACDS_TARGET_AVX512 std::size_t avx512_first_uncovered(const Word* a,
                                                       const Word* b,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i uncovered =
        _mm512_andnot_epi64(load512(b + i), load512(a + i));
    const auto mask =
        static_cast<unsigned>(_mm512_test_epi64_mask(uncovered, uncovered));
    if (mask != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(mask));
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return i;
  }
  return n;
}

PACDS_TARGET_AVX512 std::uint64_t avx512_subset_rows(const Word* rows,
                                                     std::size_t nrows,
                                                     std::size_t n,
                                                     const Word* b) {
  // Masked tail loads let rows narrower than 8 words run the whole subset
  // test in one 512-bit step, which is the common case (n <= 4096 nodes is
  // at most 64 words, and the Rule 2 instances sit at a handful).
  const unsigned tail = static_cast<unsigned>(n & 7);
  const __mmask8 tmask = static_cast<__mmask8>((1u << tail) - 1u);
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < nrows; ++r) {
    const Word* a = rows + r * n;
    std::size_t i = 0;
    bool covered = true;
    for (; i + 8 <= n; i += 8) {
      const __m512i uncovered =
          _mm512_andnot_epi64(load512(b + i), load512(a + i));
      if (_mm512_test_epi64_mask(uncovered, uncovered) != 0) {
        covered = false;
        break;
      }
    }
    if (covered && tail != 0) {
      const __m512i va = _mm512_maskz_loadu_epi64(tmask, a + i);
      const __m512i vb = _mm512_maskz_loadu_epi64(tmask, b + i);
      const __m512i uncovered = _mm512_andnot_epi64(vb, va);
      if (_mm512_test_epi64_mask(uncovered, uncovered) != 0) covered = false;
    }
    if (covered) out |= std::uint64_t{1} << r;
  }
  return out;
}

constexpr Kernels kAvx512Kernels = {
    Level::kAvx512,          avx512_or,
    avx512_and,              avx512_andnot,
    avx512_xor,              avx512_is_subset,
    avx512_is_subset_except, avx512_is_subset_union,
    avx512_intersects,       avx512_popcount,
    avx512_is_zero,          avx512_andnot_into,
    avx512_first_uncovered,  avx512_subset_rows};

#endif  // PACDS_SIMD_X86

#if defined(PACDS_SIMD_NEON)

// ---- NEON (2 words per step, aarch64 baseline) --------------------------

void neon_or(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}
void neon_and(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}
void neon_andnot(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}
void neon_xor(Word* dst, const Word* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Horizontal "any bit set" of one 128-bit register.
inline bool neon_any(uint64x2_t v) {
  return (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0;
}

bool neon_is_subset(const Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_any(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
bool neon_is_subset_except(const Word* a, const Word* b, std::size_t n,
                           std::size_t iw, Word imask) {
  if (iw < n && (a[iw] & ~b[iw] & ~imask) != 0) return false;
  const std::size_t chunk = iw / 2 * 2;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (i == chunk) {
      for (std::size_t j = i; j < i + 2; ++j) {
        if (j != iw && (a[j] & ~b[j]) != 0) return false;
      }
      continue;
    }
    if (neon_any(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return false;
  }
  for (; i < n; ++i) {
    if (i != iw && (a[i] & ~b[i]) != 0) return false;
  }
  return true;
}
bool neon_is_subset_union(const Word* a, const Word* b, const Word* c,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t cover = vorrq_u64(vld1q_u64(b + i), vld1q_u64(c + i));
    if (neon_any(vbicq_u64(vld1q_u64(a + i), cover))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}
bool neon_intersects(const Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_any(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}
std::size_t neon_popcount(const Word* a, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(a + i)));
    total += vaddvq_u8(counts);
  }
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i]));
  }
  return total;
}
bool neon_is_zero(const Word* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_any(vld1q_u64(a + i))) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}
std::size_t neon_andnot_into(Word* dst, const Word* a, const Word* b,
                             std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t w = vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    vst1q_u64(dst + i, w);
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(w)));
  }
  for (; i < n; ++i) {
    const Word w = a[i] & ~b[i];
    dst[i] = w;
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}
std::size_t neon_first_uncovered(const Word* a, const Word* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (neon_any(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) {
      return (a[i] & ~b[i]) != 0 ? i : i + 1;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return i;
  }
  return n;
}

std::uint64_t neon_subset_rows(const Word* rows, std::size_t nrows,
                               std::size_t n, const Word* b) {
  std::uint64_t out = 0;
  for (std::size_t r = 0; r < nrows; ++r) {
    const Word* a = rows + r * n;
    std::size_t i = 0;
    bool covered = true;
    for (; i + 2 <= n; i += 2) {
      if (neon_any(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) {
        covered = false;
        break;
      }
    }
    if (covered && i < n && (a[i] & ~b[i]) != 0) covered = false;
    if (covered) out |= std::uint64_t{1} << r;
  }
  return out;
}

constexpr Kernels kNeonKernels = {
    Level::kNeon,          neon_or,
    neon_and,              neon_andnot,
    neon_xor,              neon_is_subset,
    neon_is_subset_except, neon_is_subset_union,
    neon_intersects,       neon_popcount,
    neon_is_zero,          neon_andnot_into,
    neon_first_uncovered,  neon_subset_rows};

#endif  // PACDS_SIMD_NEON

// ---- Dispatch ------------------------------------------------------------

bool level_supported(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(PACDS_SIMD_NEON)
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(PACDS_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(PACDS_SIMD_X86)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Level level) noexcept {
  switch (level) {
#if defined(PACDS_SIMD_X86)
    case Level::kAvx512:
      return &kAvx512Kernels;
    case Level::kAvx2:
      return &kAvx2Kernels;
#endif
#if defined(PACDS_SIMD_NEON)
    case Level::kNeon:
      return &kNeonKernels;
#endif
    default:
      return &kScalarKernels;
  }
}

/// Parses a PACDS_SIMD value; returns false on an unknown token. "auto"
/// parses as the host's best level.
bool parse_env_level(const char* text, Level& out) noexcept {
  if (std::strcmp(text, "auto") == 0) {
    out = detect_best();
    return true;
  }
  if (std::strcmp(text, "scalar") == 0) {
    out = Level::kScalar;
    return true;
  }
  if (std::strcmp(text, "neon") == 0) {
    out = Level::kNeon;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    out = Level::kAvx2;
    return true;
  }
  if (std::strcmp(text, "avx512") == 0) {
    out = Level::kAvx512;
    return true;
  }
  return false;
}

/// Resolves the initial dispatch level: PACDS_SIMD override (with stderr
/// warnings mirroring env_size_t's strictness), else the best the host
/// supports. Allocation-free — the zero-alloc tests may trigger first use.
const Kernels* resolve_initial() noexcept {
  Level level = detect_best();
  if (const char* env = std::getenv("PACDS_SIMD");
      env != nullptr && *env != '\0') {
    Level requested;
    if (!parse_env_level(env, requested)) {
      std::fprintf(stderr,
                   "warning: PACDS_SIMD='%s' is not "
                   "auto|scalar|neon|avx2|avx512; using %s\n",
                   env, to_string(level));
    } else if (!level_supported(requested)) {
      std::fprintf(stderr,
                   "warning: PACDS_SIMD=%s unsupported on this host; "
                   "using %s\n",
                   env, to_string(level));
    } else {
      level = requested;
    }
  }
  return table_for(level);
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& active() noexcept {
  const Kernels* table = g_active.load(std::memory_order_relaxed);
  if (table == nullptr) {
    // First use (possibly racing): every contender resolves the same table,
    // the winner's warning (if any) prints once per contender at worst.
    table = resolve_initial();
    const Kernels* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, table,
                                          std::memory_order_acq_rel)) {
      table = expected;
    }
  }
  return *table;
}

Level active_level() noexcept { return active().level; }

Level detect_best() noexcept {
  for (const Level level : {Level::kAvx512, Level::kAvx2, Level::kNeon}) {
    if (level_supported(level)) return level;
  }
  return Level::kScalar;
}

std::vector<Level> available_levels() {
  std::vector<Level> out;
  for (const Level level :
       {Level::kScalar, Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (level_supported(level)) out.push_back(level);
  }
  return out;
}

bool set_level(Level level) noexcept {
  if (!level_supported(level)) return false;
  g_active.store(table_for(level), std::memory_order_release);
  return true;
}

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "?";
}

}  // namespace pacds::simd
