#pragma once
// Deterministic intra-computation parallelism for the CDS pipeline.
//
// Every per-node decision of the synchronous pipeline — the marking process
// and the simultaneous Rule 1 / Rule 2 / Rule k passes — is a pure function
// of frozen inputs (the graph, the keys, and the previous stage's mark set).
// The node range can therefore be sharded across workers with no
// synchronization beyond the fork/join, and the result is bit-identical to
// the serial pass regardless of worker count or scheduling order, provided
// shards never write the same memory. The kernels in marking/rules/rule_k
// guarantee that by aligning shard boundaries to 64-bit bitset words: a
// shard [begin, end) only touches output words [begin/64, end/64).
//
// The core layer only sees this minimal `Executor` interface; the concrete
// multi-threaded implementation is sim/ThreadPool (which derives from it),
// so core keeps zero threading dependencies and everything stays testable
// with the inline SerialExecutor.

#include <cstddef>
#include <type_traits>

namespace pacds {

/// Non-owning reference to a callable `void(begin, end, lane)` — like
/// std::function but guaranteed allocation-free (hot paths run one of these
/// per pipeline stage per interval). The referenced callable must outlive
/// the call it is passed to, which fork/join usage guarantees.
class ChunkFnRef {
 public:
  /// Constrained away from ChunkFnRef itself: for a non-const lvalue the
  /// unconstrained template would beat the copy constructor and capture the
  /// (possibly temporary) wrapper instead of the underlying callable.
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::remove_cv_t<F>, ChunkFnRef>>>
  ChunkFnRef(F& fn)  // NOLINT(google-explicit-constructor): by-design
      : ctx_(&fn), call_([](void* ctx, std::size_t begin, std::size_t end,
                            std::size_t lane) {
          (*static_cast<F*>(ctx))(begin, end, lane);
        }) {}

  void operator()(std::size_t begin, std::size_t end, std::size_t lane) const {
    call_(ctx_, begin, end, lane);
  }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t, std::size_t, std::size_t);
};

/// Fork/join execution of an index range in aligned chunks.
///
/// Implementations partition [0, count) into chunks whose boundaries are
/// multiples of `align` (except the final end, which is `count`), invoke
/// `body(begin, end, lane)` once per chunk, and return only after every
/// chunk has run. The `lane` argument selects a scratch slot: it is always
/// `< max_lanes()`, and two chunks running concurrently never share a lane,
/// so callers may index per-lane scratch buffers without locks. Chunk order
/// and lane assignment are unspecified — bodies must only write state owned
/// by their index range (or their lane's scratch).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Upper bound (exclusive) on the `lane` values handed to chunk bodies.
  [[nodiscard]] virtual std::size_t max_lanes() const = 0;

  /// Runs `body` over [0, count) as described above. `align` must be >= 1.
  virtual void run_chunks(std::size_t count, std::size_t align,
                          ChunkFnRef body) = 0;
};

/// Inline executor: one chunk, lane 0, on the calling thread. The null
/// object of the parallel layer — passing it (or a null Executor*) to any
/// pipeline entry point reproduces the plain serial pass exactly.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t max_lanes() const override { return 1; }

  void run_chunks(std::size_t count, std::size_t /*align*/,
                  ChunkFnRef body) override {
    if (count > 0) body(0, count, 0);
  }
};

/// Runs `body` on `exec`, or inline when `exec` is null. The shared
/// entry-point idiom of every *_into kernel.
inline void run_sharded(Executor* exec, std::size_t count, std::size_t align,
                        ChunkFnRef body) {
  if (exec != nullptr) {
    exec->run_chunks(count, align, body);
  } else if (count > 0) {
    body(0, count, 0);
  }
}

}  // namespace pacds
