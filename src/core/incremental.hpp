#pragma once
// Localized gateway-status maintenance (the paper's Section 2.2 locality
// feature): when the topology changes — hosts move, switch on or off — only
// hosts near the change need to re-decide their gateway status.
//
// Maintenance is *stage-split*: under the simultaneous strategy every node's
// status is the composition of three per-node decisions, each of which reads
// only inputs within the node's closed neighborhood N[v]:
//
//   marking      — adjacency rows of v and its neighbors (2-hop topology)
//   Rule 1 pass  — marking output, rows, and keys within N[v]
//   Rule 2 pass  — post-Rule-1 marks, rows, and keys within N[v]
//
// So given P = nodes whose adjacency row changed and X = nodes whose
// priority key changed, the marking stage re-evaluates N[P]; each rule stage
// re-evaluates the closed neighborhood of P ∪ X plus the flips recorded by
// the stage before it. Nodes outside those regions provably keep their
// decisions, and the result is bit-identical to a full recomputation.
// Property tests assert that equivalence on random dynamic topologies.
//
// Energy drain therefore no longer forces a full refresh: set_energy and
// advance diff the supplied (typically already-quantized) levels against the
// stored ones and seed X with the nodes whose level actually changed — under
// coarse quantization most intervals change few or no keys.

#include <cstddef>
#include <utility>
#include <vector>

#include "core/bitset.hpp"
#include "core/cds.hpp"
#include "core/graph.hpp"
#include "core/workspace.hpp"

namespace pacds {

/// A batch of topology changes.
struct EdgeDelta {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }

  void clear() {
    added.clear();
    removed.clear();
  }
};

/// Maintains the gateway set of an evolving graph with localized updates.
///
/// Always uses Strategy::kSimultaneous internally (the `strategy` field of
/// `options` is ignored): the sequential strategies cascade removals
/// arbitrarily far, which defeats locality — only the synchronous semantics
/// has the per-stage neighborhood guarantee. Gateways therefore match
/// compute_cds(..., {.strategy = kSimultaneous, ...}).
///
/// All update entry points reuse member scratch buffers; steady-state calls
/// allocate nothing.
class IncrementalCds {
 public:
  /// `exec` controls how full refreshes run: with an executor, the initial
  /// computation (and every explicit full_refresh) shards its marking and
  /// rule passes across the executor's workers — localized delta updates
  /// always run serially (their regions are small by construction). Both
  /// referents of `exec` are borrowed and must outlive this object; results
  /// are bit-identical for every executor.
  ///
  /// `stability` seeds the per-node churn estimates for RuleSet::kSEL; an
  /// empty vector means "no churn observed yet" (all zeros). Ignored — and
  /// required empty-or-n — for the other schemes.
  IncrementalCds(Graph g, RuleSet rs, std::vector<double> energy = {},
                 CdsOptions options = {}, ExecContext exec = {},
                 std::vector<double> stability = {});

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const DynBitset& gateways() const noexcept { return gateways_; }
  [[nodiscard]] const DynBitset& marked_only() const noexcept {
    return marked_only_;
  }
  [[nodiscard]] RuleSet rule_set() const noexcept { return rule_set_; }
  [[nodiscard]] const std::vector<double>& energy() const noexcept {
    return energy_;
  }

  /// Number of nodes re-evaluated by the most recent update (union over all
  /// three stages) — the locality metric (n for a full refresh).
  [[nodiscard]] std::size_t last_touched() const noexcept {
    return last_touched_;
  }

  /// Applies edge insertions/removals and re-evaluates only the affected
  /// stage regions. Throws std::invalid_argument if an added edge already
  /// exists or a removed edge is absent (callers must pass a consistent
  /// delta).
  void apply_delta(const EdgeDelta& delta);

  /// Convenience: replace node v's neighborhood (host moved); computes the
  /// delta internally and applies it.
  void move_node(NodeId v, const std::vector<NodeId>& new_neighbors);

  /// Replaces the energy levels, re-evaluating only around nodes whose
  /// level differs from the stored one. A no-op region-wise for schemes
  /// whose key ignores energy.
  void set_energy(const std::vector<double>& energy);

  /// One combined step: apply a topology delta and new energy levels, then
  /// re-evaluate once over the union of both dirty sets. Equivalent to
  /// apply_delta(delta) followed by set_energy(energy) but with a single
  /// propagation pass (keys are always read on the post-delta graph).
  void advance(const EdgeDelta& delta, const std::vector<double>& energy);

  /// kSEL variant of advance: also replaces the per-node stability
  /// estimates, dirtying marked nodes whose (typically already-quantized)
  /// estimate changed — exactly the energy-diff treatment, applied to the
  /// key's stability component.
  void advance(const EdgeDelta& delta, const std::vector<double>& energy,
               const std::vector<double>& stability);

  /// Full recomputation from scratch (also used internally).
  void full_refresh();

  /// Points subsequent updates at a metrics registry (null detaches).
  /// Phase timings (marking/rules/delta_apply) and touched-node counters
  /// record into it; recording with a registry attached allocates nothing.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept {
    exec_.metrics = metrics;
  }

 private:
  /// Mutates the graph per `delta` (validating it) and accumulates the
  /// endpoints into dirty_rows_.
  void ingest_delta(const EdgeDelta& delta);
  /// Diffs `energy` against energy_, accumulating changed nodes into
  /// dirty_keys_ (only for energy-based schemes), and stores the new levels.
  void ingest_energy(const std::vector<double>& energy);
  /// Same diff-and-store for the stability estimates (kSEL only).
  void ingest_stability(const std::vector<double>& stability);
  /// Re-evaluates the three stages from dirty_rows_ / dirty_keys_, then
  /// clears both. Updates last_touched_.
  void propagate();
  /// region |= N(region) on the current graph.
  void close_neighborhood(DynBitset& region);

  /// Workspace actually in use: the caller's, or own_ws_.
  [[nodiscard]] CdsWorkspace& workspace() noexcept {
    return exec_.workspace != nullptr ? *exec_.workspace : own_ws_;
  }

  Graph graph_;
  RuleSet rule_set_;
  std::vector<double> energy_;
  std::vector<double> stability_;  ///< kSEL churn estimates (else empty)
  CdsOptions options_;
  ExecContext exec_;
  CdsWorkspace own_ws_;

  DynBitset marked_only_;  ///< marking-process output
  DynBitset after_rule1_;  ///< after the simultaneous Rule 1 pass
  DynBitset final_;        ///< after the simultaneous Rule 2 pass
  DynBitset gateways_;     ///< final_ plus clique policy
  std::size_t last_touched_ = 0;

  // Dirty sets consumed by propagate().
  DynBitset dirty_rows_;  ///< P: nodes whose adjacency row changed
  DynBitset dirty_keys_;  ///< X: nodes whose priority key changed
  // Scratch reused across updates (no steady-state allocation).
  DynBitset region_;
  DynBitset seed_;
  DynBitset touched_;
  DynBitset grow_src_;
};

}  // namespace pacds
