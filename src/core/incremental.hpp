#pragma once
// Localized gateway-status maintenance (the paper's Section 2.2 locality
// feature): when the topology changes — hosts move, switch on or off — only
// hosts near the change need to re-decide their gateway status. Status under
// the simultaneous strategy is a function of each node's 4-hop ball
// (marking: 2 hops; Rule 1 adds neighbor marks: +1; Rule 2 adds neighbor
// post-Rule-1 status: +1), so re-evaluating a radius-4 ball around every
// changed edge reproduces the full recomputation exactly. Property tests
// assert that equivalence on random dynamic topologies.
//
// Energy drain changes priority keys *globally*, so energy updates trigger a
// full refresh (the paper's locality claim concerns topology only).

#include <cstddef>
#include <utility>
#include <vector>

#include "core/bitset.hpp"
#include "core/cds.hpp"
#include "core/graph.hpp"

namespace pacds {

/// A batch of topology changes.
struct EdgeDelta {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }
};

/// Maintains the gateway set of an evolving graph with localized updates.
///
/// Always uses Strategy::kSimultaneous internally (the `strategy` field of
/// `options` is ignored): the sequential strategies cascade removals
/// arbitrarily far, which defeats locality — only the synchronous semantics
/// has the 4-hop guarantee. Gateways therefore match
/// compute_cds(..., {.strategy = kSimultaneous, ...}).
class IncrementalCds {
 public:
  IncrementalCds(Graph g, RuleSet rs, std::vector<double> energy = {},
                 CdsOptions options = {});

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const DynBitset& gateways() const noexcept { return gateways_; }
  [[nodiscard]] const DynBitset& marked_only() const noexcept {
    return marked_only_;
  }
  [[nodiscard]] RuleSet rule_set() const noexcept { return rule_set_; }

  /// Number of nodes re-evaluated by the most recent apply_delta — the
  /// locality metric (n for a full refresh).
  [[nodiscard]] std::size_t last_touched() const noexcept {
    return last_touched_;
  }

  /// Applies edge insertions/removals and re-evaluates only the radius-4
  /// balls around the changed edges. Throws std::invalid_argument if an
  /// added edge already exists or a removed edge is absent (callers must
  /// pass a consistent delta).
  void apply_delta(const EdgeDelta& delta);

  /// Convenience: replace node v's neighborhood (host moved); computes the
  /// delta internally and applies it.
  void move_node(NodeId v, const std::vector<NodeId>& new_neighbors);

  /// Replaces all energy levels and fully recomputes statuses.
  void set_energy(std::vector<double> energy);

  /// Full recomputation from scratch (also used internally).
  void full_refresh();

 private:
  void recompute_region(const DynBitset& region);
  [[nodiscard]] DynBitset ball(const std::vector<NodeId>& centers,
                               int radius) const;

  Graph graph_;
  RuleSet rule_set_;
  std::vector<double> energy_;
  CdsOptions options_;

  DynBitset marked_only_;  ///< marking-process output
  DynBitset after_rule1_;  ///< after the simultaneous Rule 1 pass
  DynBitset final_;        ///< after the simultaneous Rule 2 pass
  DynBitset gateways_;     ///< final_ plus clique policy
  std::size_t last_touched_ = 0;
};

}  // namespace pacds
