#include "routing/stretch.hpp"

#include <algorithm>

#include "routing/routing.hpp"

namespace pacds {

StretchStats measure_stretch(const Graph& g, const DynBitset& gateways) {
  StretchStats stats;
  const DominatingSetRouter router(g, gateways);
  double sum = 0.0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    const auto dist = g.bfs_distances(s);
    for (NodeId t = static_cast<NodeId>(s + 1); t < g.num_nodes(); ++t) {
      const NodeId true_hops = dist[static_cast<std::size_t>(t)];
      if (true_hops <= 0) continue;  // disconnected pair
      const auto routed = router.route_hops(s, t);
      if (!routed) {
        ++stats.undeliverable;
        continue;
      }
      const double ratio =
          static_cast<double>(*routed) / static_cast<double>(true_hops);
      sum += ratio;
      stats.max_stretch = std::max(stats.max_stretch, ratio);
      ++stats.pairs;
    }
  }
  stats.mean_stretch =
      stats.pairs == 0 ? 1.0 : sum / static_cast<double>(stats.pairs);
  return stats;
}

}  // namespace pacds
