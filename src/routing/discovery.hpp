#pragma once
// Route discovery cost — the paper's motivation for dominating-set-based
// routing: "the searching space for a route is reduced to nodes in the
// set". This module simulates on-demand route discovery by flooding a
// route request (RREQ) and counts transmissions:
//
//   plain flooding      — every host that first hears the RREQ rebroadcasts;
//   CDS flooding        — only gateway hosts rebroadcast (non-gateways still
//                         receive and can be discovered).
//
// Both are breadth-first, so they find minimum-hop routes within their
// allowed relay set; the metric of interest is how many broadcasts the
// network pays per discovery.

#include <cstddef>
#include <optional>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Outcome of one route discovery.
struct DiscoveryResult {
  bool found = false;
  NodeId hops = -1;                 ///< route length when found
  std::size_t transmissions = 0;    ///< RREQ broadcasts sent
  std::size_t receptions = 0;       ///< RREQ copies received (radio cost)
};

/// Floods a route request from `src` toward `dst`. Hosts in `relays` (plus
/// src itself) rebroadcast the first copy they receive; everyone in range
/// receives. Pass nullptr for plain flooding (all hosts relay). The flood
/// stops expanding at the ring where dst is first reached (expanding-ring
/// semantics: deeper rings are never transmitted).
[[nodiscard]] DiscoveryResult flood_discovery(const Graph& g, NodeId src,
                                              NodeId dst,
                                              const DynBitset* relays);

/// Convenience comparison for one (src, dst) pair.
struct DiscoveryComparison {
  DiscoveryResult plain;
  DiscoveryResult cds;
};

[[nodiscard]] DiscoveryComparison compare_discovery(const Graph& g,
                                                    NodeId src, NodeId dst,
                                                    const DynBitset& gateways);

}  // namespace pacds
