#include "routing/discovery.hpp"

#include <stdexcept>
#include <vector>

namespace pacds {

DiscoveryResult flood_discovery(const Graph& g, NodeId src, NodeId dst,
                                const DynBitset* relays) {
  if (src < 0 || src >= g.num_nodes() || dst < 0 || dst >= g.num_nodes()) {
    throw std::invalid_argument("flood_discovery: host out of range");
  }
  if (relays != nullptr &&
      relays->size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("flood_discovery: relay mask size mismatch");
  }
  DiscoveryResult result;
  if (src == dst) {
    result.found = true;
    result.hops = 0;
    return result;
  }
  std::vector<char> reached(static_cast<std::size_t>(g.num_nodes()), 0);
  reached[static_cast<std::size_t>(src)] = 1;
  std::vector<NodeId> transmitters{src};
  NodeId level = 0;
  while (!transmitters.empty()) {
    ++level;
    std::vector<NodeId> newly_reached;
    for (const NodeId t : transmitters) {
      ++result.transmissions;
      result.receptions += static_cast<std::size_t>(g.degree(t));
      for (const NodeId u : g.neighbors(t)) {
        auto& r = reached[static_cast<std::size_t>(u)];
        if (!r) {
          r = 1;
          newly_reached.push_back(u);
        }
      }
    }
    for (const NodeId u : newly_reached) {
      if (u == dst) {
        result.found = true;
        result.hops = level;
        return result;  // expanding ring: stop at the discovering ring
      }
    }
    transmitters.clear();
    for (const NodeId u : newly_reached) {
      if (relays == nullptr || relays->test(static_cast<std::size_t>(u))) {
        transmitters.push_back(u);
      }
    }
  }
  return result;
}

DiscoveryComparison compare_discovery(const Graph& g, NodeId src, NodeId dst,
                                      const DynBitset& gateways) {
  return {flood_discovery(g, src, dst, nullptr),
          flood_discovery(g, src, dst, &gateways)};
}

}  // namespace pacds
