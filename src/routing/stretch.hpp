#pragma once
// Path-quality measurement: how much longer dominating-set-backbone routes
// are than true shortest paths. Property 3 of the paper guarantees stretch
// 1.0 for the raw marking-process output; the reduction rules trade that
// away for a smaller backbone — this module quantifies the trade.

#include <cstddef>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// Aggregate stretch statistics over all connected host pairs.
struct StretchStats {
  double mean_stretch = 1.0;   ///< avg (route hops / shortest hops)
  double max_stretch = 1.0;
  std::size_t pairs = 0;           ///< connected pairs measured
  std::size_t undeliverable = 0;   ///< pairs the router could not serve
};

/// Routes every ordered pair (s < t) that is connected in `g` through the
/// DominatingSetRouter built on `gateways` and compares hop counts against
/// BFS shortest paths.
[[nodiscard]] StretchStats measure_stretch(const Graph& g,
                                           const DynBitset& gateways);

}  // namespace pacds
