#pragma once
// Dominating-set-based routing (paper Section 2.1): only gateway hosts keep
// routing state. Each gateway stores its *domain membership list* (adjacent
// non-gateway hosts) and a *gateway routing table* with one entry per
// gateway carrying that gateway's membership list, hop distance and next
// hop within the induced gateway subgraph (paper Figure 2).
//
// Routing a packet src -> dst:
//   1. a non-gateway source forwards to an adjacent gateway (its source
//      gateway);
//   2. the packet travels through the induced gateway subgraph toward the
//      destination gateway (the gateway whose domain contains dst, or dst
//      itself if dst is a gateway);
//   3. the destination gateway delivers directly to dst.

#include <optional>
#include <string>
#include <vector>

#include "core/bitset.hpp"
#include "core/graph.hpp"

namespace pacds {

/// One gateway's routing-table entry for a peer gateway (paper Fig. 2(c)).
struct GatewayTableEntry {
  NodeId gateway = -1;              ///< the peer gateway this entry describes
  std::vector<NodeId> members;      ///< peer's domain membership list
  NodeId distance = -1;             ///< hops to the peer inside the backbone
  NodeId next_hop = -1;             ///< neighbor gateway toward the peer
};

/// Outcome of routing one packet.
struct RouteResult {
  bool delivered = false;
  std::vector<NodeId> path;  ///< full host sequence src..dst when delivered
  std::string failure;       ///< reason when not delivered
};

/// Routing state for one network snapshot + gateway set.
class DominatingSetRouter {
 public:
  /// Builds membership lists and per-gateway routing tables. `gateways`
  /// must be a valid (connected, dominating) set for useful routing, but
  /// construction itself accepts any subset.
  DominatingSetRouter(const Graph& g, DynBitset gateways);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const DynBitset& gateways() const noexcept { return gateways_; }
  [[nodiscard]] bool is_gateway(NodeId v) const;

  /// Adjacent gateways of a non-gateway host (its candidate source
  /// gateways), ascending. Empty for gateways themselves.
  [[nodiscard]] std::vector<NodeId> gateways_of(NodeId host) const;

  /// The gateway domain membership list (paper Fig. 2(b)): non-gateway
  /// neighbors of gateway `gw`. Throws if `gw` is not a gateway.
  [[nodiscard]] const std::vector<NodeId>& domain_members(NodeId gw) const;

  /// Full routing table of gateway `gw`, one entry per reachable gateway,
  /// ascending by gateway id (paper Fig. 2(c)).
  [[nodiscard]] std::vector<GatewayTableEntry> routing_table(NodeId gw) const;

  /// Routes a packet with the 3-step process. The returned path is the
  /// complete host sequence, e.g. [src, srcGw, ..., dstGw, dst].
  [[nodiscard]] RouteResult route(NodeId src, NodeId dst) const;

  /// Hop count of route(src, dst), or nullopt when undeliverable.
  [[nodiscard]] std::optional<NodeId> route_hops(NodeId src, NodeId dst) const;

 private:
  /// Backbone BFS from gateway `gw`: distances and parents over gateway-only
  /// paths. Rows are cached lazily per source gateway.
  struct BackboneView {
    std::vector<NodeId> dist;
    std::vector<NodeId> parent;
  };
  [[nodiscard]] BackboneView backbone_bfs(NodeId gw) const;

  /// Picks the source gateway for a host: the adjacent gateway closest to
  /// the destination gateway, ties to smaller id.
  [[nodiscard]] std::optional<NodeId> pick_source_gateway(NodeId host,
                                                          NodeId dst_gw) const;

  const Graph* graph_;
  DynBitset gateways_;
  std::vector<std::vector<NodeId>> members_;  ///< per node: domain members
};

}  // namespace pacds
