#include "routing/routing.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace pacds {

DominatingSetRouter::DominatingSetRouter(const Graph& g, DynBitset gateways)
    : graph_(&g), gateways_(std::move(gateways)) {
  if (gateways_.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument(
        "DominatingSetRouter: gateway mask size mismatch");
  }
  members_.resize(static_cast<std::size_t>(g.num_nodes()));
  gateways_.for_each_set([&](std::size_t gw) {
    for (const NodeId u : g.neighbors(static_cast<NodeId>(gw))) {
      if (!gateways_.test(static_cast<std::size_t>(u))) {
        members_[gw].push_back(u);
      }
    }
  });
}

bool DominatingSetRouter::is_gateway(NodeId v) const {
  return gateways_.test(static_cast<std::size_t>(v));
}

std::vector<NodeId> DominatingSetRouter::gateways_of(NodeId host) const {
  std::vector<NodeId> out;
  if (is_gateway(host)) return out;
  for (const NodeId u : graph_->neighbors(host)) {
    if (is_gateway(u)) out.push_back(u);
  }
  return out;
}

const std::vector<NodeId>& DominatingSetRouter::domain_members(
    NodeId gw) const {
  if (!is_gateway(gw)) {
    throw std::invalid_argument("domain_members: node " + std::to_string(gw) +
                                " is not a gateway");
  }
  return members_[static_cast<std::size_t>(gw)];
}

DominatingSetRouter::BackboneView DominatingSetRouter::backbone_bfs(
    NodeId gw) const {
  const auto n = static_cast<std::size_t>(graph_->num_nodes());
  BackboneView view{std::vector<NodeId>(n, -1), std::vector<NodeId>(n, -1)};
  if (!is_gateway(gw)) return view;
  view.dist[static_cast<std::size_t>(gw)] = 0;
  std::deque<NodeId> queue{gw};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (const NodeId nxt : graph_->neighbors(cur)) {
      const auto ni = static_cast<std::size_t>(nxt);
      if (!gateways_.test(ni) || view.dist[ni] >= 0) continue;
      view.dist[ni] =
          static_cast<NodeId>(view.dist[static_cast<std::size_t>(cur)] + 1);
      view.parent[ni] = cur;
      queue.push_back(nxt);
    }
  }
  return view;
}

std::vector<GatewayTableEntry> DominatingSetRouter::routing_table(
    NodeId gw) const {
  if (!is_gateway(gw)) {
    throw std::invalid_argument("routing_table: node " + std::to_string(gw) +
                                " is not a gateway");
  }
  const BackboneView view = backbone_bfs(gw);
  std::vector<GatewayTableEntry> table;
  gateways_.for_each_set([&](std::size_t peer_idx) {
    const auto peer = static_cast<NodeId>(peer_idx);
    if (peer == gw || view.dist[peer_idx] < 0) return;
    GatewayTableEntry entry;
    entry.gateway = peer;
    entry.members = members_[peer_idx];
    entry.distance = view.dist[peer_idx];
    // First hop on the backbone path gw -> peer: walk parents back from peer.
    NodeId hop = peer;
    while (view.parent[static_cast<std::size_t>(hop)] != gw) {
      hop = view.parent[static_cast<std::size_t>(hop)];
    }
    entry.next_hop = hop;
    table.push_back(entry);
  });
  return table;
}

RouteResult DominatingSetRouter::route(NodeId src, NodeId dst) const {
  RouteResult result;
  if (src == dst) {
    result.delivered = true;
    result.path = {src};
    return result;
  }
  if (graph_->has_edge(src, dst)) {
    // Hosts know their neighbors; one-hop delivery needs no gateway.
    result.delivered = true;
    result.path = {src, dst};
    return result;
  }
  const std::vector<NodeId> src_gws =
      is_gateway(src) ? std::vector<NodeId>{src} : gateways_of(src);
  const std::vector<NodeId> dst_gws =
      is_gateway(dst) ? std::vector<NodeId>{dst} : gateways_of(dst);
  if (src_gws.empty()) {
    result.failure = "source host is not dominated by any gateway";
    return result;
  }
  if (dst_gws.empty()) {
    result.failure = "destination host is not dominated by any gateway";
    return result;
  }
  NodeId best_total = -1;
  NodeId best_sg = -1;
  NodeId best_dg = -1;
  BackboneView best_view;
  for (const NodeId sg : src_gws) {
    BackboneView view = backbone_bfs(sg);
    for (const NodeId dg : dst_gws) {
      const NodeId d = view.dist[static_cast<std::size_t>(dg)];
      if (d < 0) continue;
      const NodeId total = static_cast<NodeId>(
          d + (src == sg ? 0 : 1) + (dst == dg ? 0 : 1));
      if (best_total < 0 || total < best_total) {
        best_total = total;
        best_sg = sg;
        best_dg = dg;
        best_view = view;
      }
    }
  }
  if (best_total < 0) {
    result.failure = "no backbone route between source and destination "
                     "gateways";
    return result;
  }
  std::vector<NodeId> backbone;
  for (NodeId p = best_dg; p != -1;
       p = best_view.parent[static_cast<std::size_t>(p)]) {
    backbone.push_back(p);
  }
  std::reverse(backbone.begin(), backbone.end());  // now best_sg .. best_dg
  result.delivered = true;
  if (src != best_sg) result.path.push_back(src);
  result.path.insert(result.path.end(), backbone.begin(), backbone.end());
  if (dst != best_dg) result.path.push_back(dst);
  return result;
}

std::optional<NodeId> DominatingSetRouter::route_hops(NodeId src,
                                                      NodeId dst) const {
  const RouteResult r = route(src, dst);
  if (!r.delivered) return std::nullopt;
  return static_cast<NodeId>(r.path.size() - 1);
}

std::optional<NodeId> DominatingSetRouter::pick_source_gateway(
    NodeId host, NodeId dst_gw) const {
  const auto candidates =
      is_gateway(host) ? std::vector<NodeId>{host} : gateways_of(host);
  std::optional<NodeId> best;
  NodeId best_dist = -1;
  for (const NodeId sg : candidates) {
    const BackboneView view = backbone_bfs(sg);
    const NodeId d = view.dist[static_cast<std::size_t>(dst_gw)];
    if (d < 0) continue;
    if (!best || d < best_dist) {
      best = sg;
      best_dist = d;
    }
  }
  return best;
}

}  // namespace pacds
