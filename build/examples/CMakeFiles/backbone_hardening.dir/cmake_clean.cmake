file(REMOVE_RECURSE
  "CMakeFiles/backbone_hardening.dir/backbone_hardening.cpp.o"
  "CMakeFiles/backbone_hardening.dir/backbone_hardening.cpp.o.d"
  "backbone_hardening"
  "backbone_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
