# Empty compiler generated dependencies file for backbone_hardening.
# This may be replaced when dependencies are built.
