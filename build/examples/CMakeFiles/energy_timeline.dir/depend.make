# Empty dependencies file for energy_timeline.
# This may be replaced when dependencies are built.
