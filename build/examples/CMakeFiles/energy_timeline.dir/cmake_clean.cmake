file(REMOVE_RECURSE
  "CMakeFiles/energy_timeline.dir/energy_timeline.cpp.o"
  "CMakeFiles/energy_timeline.dir/energy_timeline.cpp.o.d"
  "energy_timeline"
  "energy_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
