file(REMOVE_RECURSE
  "CMakeFiles/mobility_playground.dir/mobility_playground.cpp.o"
  "CMakeFiles/mobility_playground.dir/mobility_playground.cpp.o.d"
  "mobility_playground"
  "mobility_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
