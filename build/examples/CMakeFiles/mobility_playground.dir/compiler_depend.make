# Empty compiler generated dependencies file for mobility_playground.
# This may be replaced when dependencies are built.
