file(REMOVE_RECURSE
  "CMakeFiles/fig10_gateway_count.dir/fig10_gateway_count.cpp.o"
  "CMakeFiles/fig10_gateway_count.dir/fig10_gateway_count.cpp.o.d"
  "fig10_gateway_count"
  "fig10_gateway_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gateway_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
