# Empty compiler generated dependencies file for fig10_gateway_count.
# This may be replaced when dependencies are built.
