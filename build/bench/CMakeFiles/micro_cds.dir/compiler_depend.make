# Empty compiler generated dependencies file for micro_cds.
# This may be replaced when dependencies are built.
