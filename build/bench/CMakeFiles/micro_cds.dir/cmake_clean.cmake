file(REMOVE_RECURSE
  "CMakeFiles/micro_cds.dir/micro_cds.cpp.o"
  "CMakeFiles/micro_cds.dir/micro_cds.cpp.o.d"
  "micro_cds"
  "micro_cds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
