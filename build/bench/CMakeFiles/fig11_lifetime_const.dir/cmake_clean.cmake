file(REMOVE_RECURSE
  "CMakeFiles/fig11_lifetime_const.dir/fig11_lifetime_const.cpp.o"
  "CMakeFiles/fig11_lifetime_const.dir/fig11_lifetime_const.cpp.o.d"
  "fig11_lifetime_const"
  "fig11_lifetime_const.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lifetime_const.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
