# Empty compiler generated dependencies file for fig11_lifetime_const.
# This may be replaced when dependencies are built.
