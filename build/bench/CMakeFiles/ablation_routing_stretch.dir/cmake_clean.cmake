file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing_stretch.dir/ablation_routing_stretch.cpp.o"
  "CMakeFiles/ablation_routing_stretch.dir/ablation_routing_stretch.cpp.o.d"
  "ablation_routing_stretch"
  "ablation_routing_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
