# Empty compiler generated dependencies file for ablation_routing_stretch.
# This may be replaced when dependencies are built.
