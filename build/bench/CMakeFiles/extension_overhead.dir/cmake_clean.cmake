file(REMOVE_RECURSE
  "CMakeFiles/extension_overhead.dir/extension_overhead.cpp.o"
  "CMakeFiles/extension_overhead.dir/extension_overhead.cpp.o.d"
  "extension_overhead"
  "extension_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
