# Empty compiler generated dependencies file for extension_overhead.
# This may be replaced when dependencies are built.
