file(REMOVE_RECURSE
  "CMakeFiles/extension_discovery.dir/extension_discovery.cpp.o"
  "CMakeFiles/extension_discovery.dir/extension_discovery.cpp.o.d"
  "extension_discovery"
  "extension_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
