# Empty compiler generated dependencies file for extension_discovery.
# This may be replaced when dependencies are built.
