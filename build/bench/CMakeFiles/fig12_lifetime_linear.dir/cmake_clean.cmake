file(REMOVE_RECURSE
  "CMakeFiles/fig12_lifetime_linear.dir/fig12_lifetime_linear.cpp.o"
  "CMakeFiles/fig12_lifetime_linear.dir/fig12_lifetime_linear.cpp.o.d"
  "fig12_lifetime_linear"
  "fig12_lifetime_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lifetime_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
