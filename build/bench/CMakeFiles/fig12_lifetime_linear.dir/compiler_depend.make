# Empty compiler generated dependencies file for fig12_lifetime_linear.
# This may be replaced when dependencies are built.
