# Empty dependencies file for ablation_rules.
# This may be replaced when dependencies are built.
