file(REMOVE_RECURSE
  "CMakeFiles/micro_udg.dir/micro_udg.cpp.o"
  "CMakeFiles/micro_udg.dir/micro_udg.cpp.o.d"
  "micro_udg"
  "micro_udg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_udg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
