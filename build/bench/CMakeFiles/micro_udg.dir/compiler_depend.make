# Empty compiler generated dependencies file for micro_udg.
# This may be replaced when dependencies are built.
