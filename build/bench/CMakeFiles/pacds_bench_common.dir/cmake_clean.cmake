file(REMOVE_RECURSE
  "CMakeFiles/pacds_bench_common.dir/fig_common.cpp.o"
  "CMakeFiles/pacds_bench_common.dir/fig_common.cpp.o.d"
  "libpacds_bench_common.a"
  "libpacds_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
