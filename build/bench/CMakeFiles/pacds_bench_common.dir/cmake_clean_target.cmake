file(REMOVE_RECURSE
  "libpacds_bench_common.a"
)
