# Empty compiler generated dependencies file for pacds_bench_common.
# This may be replaced when dependencies are built.
