# Empty compiler generated dependencies file for fig13_lifetime_quadratic.
# This may be replaced when dependencies are built.
