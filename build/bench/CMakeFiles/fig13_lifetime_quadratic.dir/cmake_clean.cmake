file(REMOVE_RECURSE
  "CMakeFiles/fig13_lifetime_quadratic.dir/fig13_lifetime_quadratic.cpp.o"
  "CMakeFiles/fig13_lifetime_quadratic.dir/fig13_lifetime_quadratic.cpp.o.d"
  "fig13_lifetime_quadratic"
  "fig13_lifetime_quadratic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lifetime_quadratic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
