# Empty compiler generated dependencies file for extension_redundancy.
# This may be replaced when dependencies are built.
