file(REMOVE_RECURSE
  "CMakeFiles/extension_redundancy.dir/extension_redundancy.cpp.o"
  "CMakeFiles/extension_redundancy.dir/extension_redundancy.cpp.o.d"
  "extension_redundancy"
  "extension_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
