file(REMOVE_RECURSE
  "CMakeFiles/extension_rule_k.dir/extension_rule_k.cpp.o"
  "CMakeFiles/extension_rule_k.dir/extension_rule_k.cpp.o.d"
  "extension_rule_k"
  "extension_rule_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_rule_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
