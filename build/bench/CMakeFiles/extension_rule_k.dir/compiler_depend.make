# Empty compiler generated dependencies file for extension_rule_k.
# This may be replaced when dependencies are built.
