# Empty dependencies file for extension_lossy.
# This may be replaced when dependencies are built.
