file(REMOVE_RECURSE
  "CMakeFiles/extension_lossy.dir/extension_lossy.cpp.o"
  "CMakeFiles/extension_lossy.dir/extension_lossy.cpp.o.d"
  "extension_lossy"
  "extension_lossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_lossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
