# Empty dependencies file for extension_latency.
# This may be replaced when dependencies are built.
