file(REMOVE_RECURSE
  "CMakeFiles/extension_latency.dir/extension_latency.cpp.o"
  "CMakeFiles/extension_latency.dir/extension_latency.cpp.o.d"
  "extension_latency"
  "extension_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
