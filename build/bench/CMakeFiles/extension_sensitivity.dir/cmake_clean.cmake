file(REMOVE_RECURSE
  "CMakeFiles/extension_sensitivity.dir/extension_sensitivity.cpp.o"
  "CMakeFiles/extension_sensitivity.dir/extension_sensitivity.cpp.o.d"
  "extension_sensitivity"
  "extension_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
