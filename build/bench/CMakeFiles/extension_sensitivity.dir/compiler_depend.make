# Empty compiler generated dependencies file for extension_sensitivity.
# This may be replaced when dependencies are built.
