# Empty compiler generated dependencies file for extension_traffic.
# This may be replaced when dependencies are built.
