file(REMOVE_RECURSE
  "CMakeFiles/extension_traffic.dir/extension_traffic.cpp.o"
  "CMakeFiles/extension_traffic.dir/extension_traffic.cpp.o.d"
  "extension_traffic"
  "extension_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
