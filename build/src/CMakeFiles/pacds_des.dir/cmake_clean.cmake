file(REMOVE_RECURSE
  "CMakeFiles/pacds_des.dir/des/event_queue.cpp.o"
  "CMakeFiles/pacds_des.dir/des/event_queue.cpp.o.d"
  "CMakeFiles/pacds_des.dir/des/packet_sim.cpp.o"
  "CMakeFiles/pacds_des.dir/des/packet_sim.cpp.o.d"
  "libpacds_des.a"
  "libpacds_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
