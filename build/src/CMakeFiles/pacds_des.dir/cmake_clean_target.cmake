file(REMOVE_RECURSE
  "libpacds_des.a"
)
