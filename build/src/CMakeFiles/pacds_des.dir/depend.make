# Empty dependencies file for pacds_des.
# This may be replaced when dependencies are built.
