file(REMOVE_RECURSE
  "libpacds_energy.a"
)
