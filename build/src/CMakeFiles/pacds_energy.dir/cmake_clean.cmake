file(REMOVE_RECURSE
  "CMakeFiles/pacds_energy.dir/energy/battery.cpp.o"
  "CMakeFiles/pacds_energy.dir/energy/battery.cpp.o.d"
  "CMakeFiles/pacds_energy.dir/energy/traffic.cpp.o"
  "CMakeFiles/pacds_energy.dir/energy/traffic.cpp.o.d"
  "libpacds_energy.a"
  "libpacds_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
