# Empty compiler generated dependencies file for pacds_energy.
# This may be replaced when dependencies are built.
