# Empty dependencies file for pacds_routing.
# This may be replaced when dependencies are built.
