file(REMOVE_RECURSE
  "CMakeFiles/pacds_routing.dir/routing/discovery.cpp.o"
  "CMakeFiles/pacds_routing.dir/routing/discovery.cpp.o.d"
  "CMakeFiles/pacds_routing.dir/routing/routing.cpp.o"
  "CMakeFiles/pacds_routing.dir/routing/routing.cpp.o.d"
  "CMakeFiles/pacds_routing.dir/routing/stretch.cpp.o"
  "CMakeFiles/pacds_routing.dir/routing/stretch.cpp.o.d"
  "libpacds_routing.a"
  "libpacds_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
