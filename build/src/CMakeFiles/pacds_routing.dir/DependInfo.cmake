
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/discovery.cpp" "src/CMakeFiles/pacds_routing.dir/routing/discovery.cpp.o" "gcc" "src/CMakeFiles/pacds_routing.dir/routing/discovery.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/pacds_routing.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/pacds_routing.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/stretch.cpp" "src/CMakeFiles/pacds_routing.dir/routing/stretch.cpp.o" "gcc" "src/CMakeFiles/pacds_routing.dir/routing/stretch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacds_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
