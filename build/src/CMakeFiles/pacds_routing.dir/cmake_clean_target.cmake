file(REMOVE_RECURSE
  "libpacds_routing.a"
)
