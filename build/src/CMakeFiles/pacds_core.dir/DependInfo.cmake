
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/articulation.cpp" "src/CMakeFiles/pacds_core.dir/core/articulation.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/articulation.cpp.o.d"
  "/root/repo/src/core/bitset.cpp" "src/CMakeFiles/pacds_core.dir/core/bitset.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/bitset.cpp.o.d"
  "/root/repo/src/core/cds.cpp" "src/CMakeFiles/pacds_core.dir/core/cds.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/cds.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/CMakeFiles/pacds_core.dir/core/graph.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/graph.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/CMakeFiles/pacds_core.dir/core/incremental.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/incremental.cpp.o.d"
  "/root/repo/src/core/keys.cpp" "src/CMakeFiles/pacds_core.dir/core/keys.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/keys.cpp.o.d"
  "/root/repo/src/core/marking.cpp" "src/CMakeFiles/pacds_core.dir/core/marking.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/marking.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/pacds_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/redundancy.cpp" "src/CMakeFiles/pacds_core.dir/core/redundancy.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/redundancy.cpp.o.d"
  "/root/repo/src/core/rule_k.cpp" "src/CMakeFiles/pacds_core.dir/core/rule_k.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/rule_k.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/CMakeFiles/pacds_core.dir/core/rules.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/rules.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/CMakeFiles/pacds_core.dir/core/verify.cpp.o" "gcc" "src/CMakeFiles/pacds_core.dir/core/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
