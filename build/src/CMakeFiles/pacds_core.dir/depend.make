# Empty dependencies file for pacds_core.
# This may be replaced when dependencies are built.
