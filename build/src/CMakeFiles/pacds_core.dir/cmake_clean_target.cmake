file(REMOVE_RECURSE
  "libpacds_core.a"
)
