file(REMOVE_RECURSE
  "CMakeFiles/pacds_core.dir/core/articulation.cpp.o"
  "CMakeFiles/pacds_core.dir/core/articulation.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/bitset.cpp.o"
  "CMakeFiles/pacds_core.dir/core/bitset.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/cds.cpp.o"
  "CMakeFiles/pacds_core.dir/core/cds.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/graph.cpp.o"
  "CMakeFiles/pacds_core.dir/core/graph.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/incremental.cpp.o"
  "CMakeFiles/pacds_core.dir/core/incremental.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/keys.cpp.o"
  "CMakeFiles/pacds_core.dir/core/keys.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/marking.cpp.o"
  "CMakeFiles/pacds_core.dir/core/marking.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/metrics.cpp.o"
  "CMakeFiles/pacds_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/redundancy.cpp.o"
  "CMakeFiles/pacds_core.dir/core/redundancy.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/rule_k.cpp.o"
  "CMakeFiles/pacds_core.dir/core/rule_k.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/rules.cpp.o"
  "CMakeFiles/pacds_core.dir/core/rules.cpp.o.d"
  "CMakeFiles/pacds_core.dir/core/verify.cpp.o"
  "CMakeFiles/pacds_core.dir/core/verify.cpp.o.d"
  "libpacds_core.a"
  "libpacds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
