
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/geometric.cpp" "src/CMakeFiles/pacds_net.dir/net/geometric.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/geometric.cpp.o.d"
  "/root/repo/src/net/mobility.cpp" "src/CMakeFiles/pacds_net.dir/net/mobility.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/mobility.cpp.o.d"
  "/root/repo/src/net/rng.cpp" "src/CMakeFiles/pacds_net.dir/net/rng.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/rng.cpp.o.d"
  "/root/repo/src/net/space.cpp" "src/CMakeFiles/pacds_net.dir/net/space.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/space.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/pacds_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/udg.cpp" "src/CMakeFiles/pacds_net.dir/net/udg.cpp.o" "gcc" "src/CMakeFiles/pacds_net.dir/net/udg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacds_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
