file(REMOVE_RECURSE
  "CMakeFiles/pacds_net.dir/net/geometric.cpp.o"
  "CMakeFiles/pacds_net.dir/net/geometric.cpp.o.d"
  "CMakeFiles/pacds_net.dir/net/mobility.cpp.o"
  "CMakeFiles/pacds_net.dir/net/mobility.cpp.o.d"
  "CMakeFiles/pacds_net.dir/net/rng.cpp.o"
  "CMakeFiles/pacds_net.dir/net/rng.cpp.o.d"
  "CMakeFiles/pacds_net.dir/net/space.cpp.o"
  "CMakeFiles/pacds_net.dir/net/space.cpp.o.d"
  "CMakeFiles/pacds_net.dir/net/topology.cpp.o"
  "CMakeFiles/pacds_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/pacds_net.dir/net/udg.cpp.o"
  "CMakeFiles/pacds_net.dir/net/udg.cpp.o.d"
  "libpacds_net.a"
  "libpacds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
