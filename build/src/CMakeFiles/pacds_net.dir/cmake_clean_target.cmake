file(REMOVE_RECURSE
  "libpacds_net.a"
)
