# Empty compiler generated dependencies file for pacds_net.
# This may be replaced when dependencies are built.
