file(REMOVE_RECURSE
  "CMakeFiles/pacds_io.dir/io/chart.cpp.o"
  "CMakeFiles/pacds_io.dir/io/chart.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/csv.cpp.o"
  "CMakeFiles/pacds_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/dot.cpp.o"
  "CMakeFiles/pacds_io.dir/io/dot.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/edgelist.cpp.o"
  "CMakeFiles/pacds_io.dir/io/edgelist.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/json.cpp.o"
  "CMakeFiles/pacds_io.dir/io/json.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/scenario.cpp.o"
  "CMakeFiles/pacds_io.dir/io/scenario.cpp.o.d"
  "CMakeFiles/pacds_io.dir/io/table.cpp.o"
  "CMakeFiles/pacds_io.dir/io/table.cpp.o.d"
  "libpacds_io.a"
  "libpacds_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
