file(REMOVE_RECURSE
  "libpacds_io.a"
)
