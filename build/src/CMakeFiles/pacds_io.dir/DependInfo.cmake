
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/chart.cpp" "src/CMakeFiles/pacds_io.dir/io/chart.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/chart.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/pacds_io.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/dot.cpp" "src/CMakeFiles/pacds_io.dir/io/dot.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/dot.cpp.o.d"
  "/root/repo/src/io/edgelist.cpp" "src/CMakeFiles/pacds_io.dir/io/edgelist.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/edgelist.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/CMakeFiles/pacds_io.dir/io/json.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/json.cpp.o.d"
  "/root/repo/src/io/scenario.cpp" "src/CMakeFiles/pacds_io.dir/io/scenario.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/scenario.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/pacds_io.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/pacds_io.dir/io/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacds_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
