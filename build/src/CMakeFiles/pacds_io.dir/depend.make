# Empty dependencies file for pacds_io.
# This may be replaced when dependencies are built.
