# Empty dependencies file for pacds_baselines.
# This may be replaced when dependencies are built.
