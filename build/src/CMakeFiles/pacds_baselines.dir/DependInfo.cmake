
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/exact_mcds.cpp" "src/CMakeFiles/pacds_baselines.dir/baselines/exact_mcds.cpp.o" "gcc" "src/CMakeFiles/pacds_baselines.dir/baselines/exact_mcds.cpp.o.d"
  "/root/repo/src/baselines/greedy_mcds.cpp" "src/CMakeFiles/pacds_baselines.dir/baselines/greedy_mcds.cpp.o" "gcc" "src/CMakeFiles/pacds_baselines.dir/baselines/greedy_mcds.cpp.o.d"
  "/root/repo/src/baselines/mis_cds.cpp" "src/CMakeFiles/pacds_baselines.dir/baselines/mis_cds.cpp.o" "gcc" "src/CMakeFiles/pacds_baselines.dir/baselines/mis_cds.cpp.o.d"
  "/root/repo/src/baselines/tree_cds.cpp" "src/CMakeFiles/pacds_baselines.dir/baselines/tree_cds.cpp.o" "gcc" "src/CMakeFiles/pacds_baselines.dir/baselines/tree_cds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacds_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
