file(REMOVE_RECURSE
  "libpacds_baselines.a"
)
