file(REMOVE_RECURSE
  "CMakeFiles/pacds_baselines.dir/baselines/exact_mcds.cpp.o"
  "CMakeFiles/pacds_baselines.dir/baselines/exact_mcds.cpp.o.d"
  "CMakeFiles/pacds_baselines.dir/baselines/greedy_mcds.cpp.o"
  "CMakeFiles/pacds_baselines.dir/baselines/greedy_mcds.cpp.o.d"
  "CMakeFiles/pacds_baselines.dir/baselines/mis_cds.cpp.o"
  "CMakeFiles/pacds_baselines.dir/baselines/mis_cds.cpp.o.d"
  "CMakeFiles/pacds_baselines.dir/baselines/tree_cds.cpp.o"
  "CMakeFiles/pacds_baselines.dir/baselines/tree_cds.cpp.o.d"
  "libpacds_baselines.a"
  "libpacds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
