file(REMOVE_RECURSE
  "libpacds_cli.a"
)
