file(REMOVE_RECURSE
  "CMakeFiles/pacds_cli.dir/cli/args.cpp.o"
  "CMakeFiles/pacds_cli.dir/cli/args.cpp.o.d"
  "CMakeFiles/pacds_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/pacds_cli.dir/cli/commands.cpp.o.d"
  "libpacds_cli.a"
  "libpacds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
