# Empty dependencies file for pacds_cli.
# This may be replaced when dependencies are built.
