file(REMOVE_RECURSE
  "CMakeFiles/pacds_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/lifetime.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/lifetime.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/montecarlo.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/montecarlo.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/overhead.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/overhead.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/threadpool.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/threadpool.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/pacds_sim.dir/sim/traffic_sim.cpp.o"
  "CMakeFiles/pacds_sim.dir/sim/traffic_sim.cpp.o.d"
  "libpacds_sim.a"
  "libpacds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
