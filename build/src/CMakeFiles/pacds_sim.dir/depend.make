# Empty dependencies file for pacds_sim.
# This may be replaced when dependencies are built.
