
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/pacds_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/pacds_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/lifetime.cpp" "src/CMakeFiles/pacds_sim.dir/sim/lifetime.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/lifetime.cpp.o.d"
  "/root/repo/src/sim/montecarlo.cpp" "src/CMakeFiles/pacds_sim.dir/sim/montecarlo.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/montecarlo.cpp.o.d"
  "/root/repo/src/sim/overhead.cpp" "src/CMakeFiles/pacds_sim.dir/sim/overhead.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/overhead.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/pacds_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/threadpool.cpp" "src/CMakeFiles/pacds_sim.dir/sim/threadpool.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/threadpool.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/pacds_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/traffic_sim.cpp" "src/CMakeFiles/pacds_sim.dir/sim/traffic_sim.cpp.o" "gcc" "src/CMakeFiles/pacds_sim.dir/sim/traffic_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacds_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacds_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacds_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
