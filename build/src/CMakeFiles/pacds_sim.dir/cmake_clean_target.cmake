file(REMOVE_RECURSE
  "libpacds_sim.a"
)
