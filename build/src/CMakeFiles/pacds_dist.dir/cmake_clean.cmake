file(REMOVE_RECURSE
  "CMakeFiles/pacds_dist.dir/dist/agent.cpp.o"
  "CMakeFiles/pacds_dist.dir/dist/agent.cpp.o.d"
  "CMakeFiles/pacds_dist.dir/dist/protocol.cpp.o"
  "CMakeFiles/pacds_dist.dir/dist/protocol.cpp.o.d"
  "libpacds_dist.a"
  "libpacds_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
