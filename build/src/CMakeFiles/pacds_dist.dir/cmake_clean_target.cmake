file(REMOVE_RECURSE
  "libpacds_dist.a"
)
