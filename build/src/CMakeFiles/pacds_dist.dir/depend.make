# Empty dependencies file for pacds_dist.
# This may be replaced when dependencies are built.
