# Empty dependencies file for pacds.
# This may be replaced when dependencies are built.
