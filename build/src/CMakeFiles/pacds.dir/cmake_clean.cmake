file(REMOVE_RECURSE
  "CMakeFiles/pacds.dir/cli/main.cpp.o"
  "CMakeFiles/pacds.dir/cli/main.cpp.o.d"
  "pacds"
  "pacds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
