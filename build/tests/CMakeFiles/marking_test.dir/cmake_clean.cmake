file(REMOVE_RECURSE
  "CMakeFiles/marking_test.dir/marking_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking_test.cpp.o.d"
  "marking_test"
  "marking_test.pdb"
  "marking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
