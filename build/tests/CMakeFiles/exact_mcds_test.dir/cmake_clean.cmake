file(REMOVE_RECURSE
  "CMakeFiles/exact_mcds_test.dir/exact_mcds_test.cpp.o"
  "CMakeFiles/exact_mcds_test.dir/exact_mcds_test.cpp.o.d"
  "exact_mcds_test"
  "exact_mcds_test.pdb"
  "exact_mcds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_mcds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
