# Empty compiler generated dependencies file for stretch_test.
# This may be replaced when dependencies are built.
