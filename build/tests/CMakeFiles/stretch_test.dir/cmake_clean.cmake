file(REMOVE_RECURSE
  "CMakeFiles/stretch_test.dir/stretch_test.cpp.o"
  "CMakeFiles/stretch_test.dir/stretch_test.cpp.o.d"
  "stretch_test"
  "stretch_test.pdb"
  "stretch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stretch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
