# Empty compiler generated dependencies file for cds_property_test.
# This may be replaced when dependencies are built.
