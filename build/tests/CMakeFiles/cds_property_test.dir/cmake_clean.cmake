file(REMOVE_RECURSE
  "CMakeFiles/cds_property_test.dir/cds_property_test.cpp.o"
  "CMakeFiles/cds_property_test.dir/cds_property_test.cpp.o.d"
  "cds_property_test"
  "cds_property_test.pdb"
  "cds_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cds_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
