file(REMOVE_RECURSE
  "CMakeFiles/articulation_test.dir/articulation_test.cpp.o"
  "CMakeFiles/articulation_test.dir/articulation_test.cpp.o.d"
  "articulation_test"
  "articulation_test.pdb"
  "articulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/articulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
