# Empty dependencies file for articulation_test.
# This may be replaced when dependencies are built.
