file(REMOVE_RECURSE
  "CMakeFiles/overhead_test.dir/overhead_test.cpp.o"
  "CMakeFiles/overhead_test.dir/overhead_test.cpp.o.d"
  "overhead_test"
  "overhead_test.pdb"
  "overhead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
