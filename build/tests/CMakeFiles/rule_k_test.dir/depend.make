# Empty dependencies file for rule_k_test.
# This may be replaced when dependencies are built.
