file(REMOVE_RECURSE
  "CMakeFiles/vec2_space_test.dir/vec2_space_test.cpp.o"
  "CMakeFiles/vec2_space_test.dir/vec2_space_test.cpp.o.d"
  "vec2_space_test"
  "vec2_space_test.pdb"
  "vec2_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec2_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
