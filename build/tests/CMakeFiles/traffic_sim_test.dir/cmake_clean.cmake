file(REMOVE_RECURSE
  "CMakeFiles/traffic_sim_test.dir/traffic_sim_test.cpp.o"
  "CMakeFiles/traffic_sim_test.dir/traffic_sim_test.cpp.o.d"
  "traffic_sim_test"
  "traffic_sim_test.pdb"
  "traffic_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
