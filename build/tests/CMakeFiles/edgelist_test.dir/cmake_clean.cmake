file(REMOVE_RECURSE
  "CMakeFiles/edgelist_test.dir/edgelist_test.cpp.o"
  "CMakeFiles/edgelist_test.dir/edgelist_test.cpp.o.d"
  "edgelist_test"
  "edgelist_test.pdb"
  "edgelist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgelist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
