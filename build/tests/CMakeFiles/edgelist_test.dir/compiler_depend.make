# Empty compiler generated dependencies file for edgelist_test.
# This may be replaced when dependencies are built.
