file(REMOVE_RECURSE
  "CMakeFiles/dist_protocol_test.dir/dist_protocol_test.cpp.o"
  "CMakeFiles/dist_protocol_test.dir/dist_protocol_test.cpp.o.d"
  "dist_protocol_test"
  "dist_protocol_test.pdb"
  "dist_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
