# Empty compiler generated dependencies file for dist_protocol_test.
# This may be replaced when dependencies are built.
